//! Normalization fitted on the training region and applied consistently to
//! every segment — one of the consistency guarantees of the TFB pipeline
//! (Issue 3: the choice of normalization changes results, so it must be
//! identical across methods).

use crate::series::MultiSeries;
use crate::{DataError, Result};

/// The normalization schemes supported by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Per-channel z-score using training-set statistics (TFB's default).
    #[default]
    ZScore,
    /// Per-channel min-max onto [0, 1] using training-set statistics.
    MinMax,
    /// Identity.
    None,
}

impl Normalization {
    /// Canonical identifier used in configs and manifests.
    pub fn name(self) -> &'static str {
        match self {
            Normalization::ZScore => "ZScore",
            Normalization::MinMax => "MinMax",
            Normalization::None => "None",
        }
    }

    /// Inverse of [`Normalization::name`].
    pub fn parse_name(name: &str) -> Option<Normalization> {
        match name {
            "ZScore" => Some(Normalization::ZScore),
            "MinMax" => Some(Normalization::MinMax),
            "None" => Some(Normalization::None),
            _ => None,
        }
    }
}

/// Per-channel statistics captured from the training segment.
#[derive(Debug, Clone, PartialEq)]
pub struct NormStats {
    /// Channel means (z-score) or minima (min-max).
    pub offset: Vec<f64>,
    /// Channel standard deviations (z-score) or ranges (min-max); entries
    /// are clamped away from zero so constant channels stay finite.
    pub scale: Vec<f64>,
}

/// A fitted normalizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    /// Which scheme this normalizer applies.
    pub scheme: Normalization,
    /// Fitted statistics (identity stats for [`Normalization::None`]).
    pub stats: NormStats,
}

impl Normalizer {
    /// Fits normalization statistics on (typically) the training segment.
    pub fn fit(train: &MultiSeries, scheme: Normalization) -> Normalizer {
        let dim = train.dim();
        let n = train.len();
        let mut offset = vec![0.0; dim];
        let mut scale = vec![1.0; dim];
        match scheme {
            Normalization::None => {}
            Normalization::ZScore => {
                for c in 0..dim {
                    let mut mean = 0.0;
                    for t in 0..n {
                        mean += train.at(t, c);
                    }
                    mean /= n as f64;
                    let mut var = 0.0;
                    for t in 0..n {
                        let d = train.at(t, c) - mean;
                        var += d * d;
                    }
                    var /= n as f64;
                    offset[c] = mean;
                    scale[c] = var.sqrt().max(1e-8);
                }
            }
            Normalization::MinMax => {
                for c in 0..dim {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for t in 0..n {
                        let v = train.at(t, c);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    offset[c] = lo;
                    scale[c] = (hi - lo).max(1e-8);
                }
            }
        }
        Normalizer {
            scheme,
            stats: NormStats { offset, scale },
        }
    }

    /// Applies the normalization to any segment of the same dimensionality.
    pub fn apply(&self, series: &MultiSeries) -> Result<MultiSeries> {
        self.map(series, |v, o, s| (v - o) / s)
    }

    /// Inverts the normalization (to report metrics on the original scale
    /// when desired; TFB reports normalized metrics in Tables 7–8).
    pub fn invert(&self, series: &MultiSeries) -> Result<MultiSeries> {
        self.map(series, |v, o, s| v * s + o)
    }

    /// Inverts a raw forecast row-block laid out time-major.
    pub fn invert_block(&self, block: &mut [f64], dim: usize) -> Result<()> {
        if dim != self.stats.offset.len() {
            return Err(DataError::ShapeMismatch("normalizer dim"));
        }
        if self.scheme == Normalization::None {
            return Ok(());
        }
        for (i, v) in block.iter_mut().enumerate() {
            let c = i % dim;
            *v = *v * self.stats.scale[c] + self.stats.offset[c];
        }
        Ok(())
    }

    fn map(&self, series: &MultiSeries, f: impl Fn(f64, f64, f64) -> f64) -> Result<MultiSeries> {
        let dim = series.dim();
        if dim != self.stats.offset.len() {
            return Err(DataError::ShapeMismatch("normalizer dim"));
        }
        if self.scheme == Normalization::None {
            return Ok(series.clone());
        }
        let n = series.len();
        let mut values = Vec::with_capacity(n * dim);
        for t in 0..n {
            for c in 0..dim {
                values.push(f(
                    series.at(t, c),
                    self.stats.offset[c],
                    self.stats.scale[c],
                ));
            }
        }
        MultiSeries::new(
            series.name.clone(),
            series.frequency,
            series.domain,
            dim,
            values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Domain, Frequency};

    fn series(chans: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_channels("s", Frequency::Hourly, Domain::Energy, chans).unwrap()
    }

    #[test]
    fn zscore_normalizes_train_to_unit() {
        let s = series(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        let nz = Normalizer::fit(&s, Normalization::ZScore);
        let out = nz.apply(&s).unwrap();
        let ch = out.channel(0);
        let mean: f64 = ch.iter().sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-10);
        let var: f64 = ch.iter().map(|v| v * v).sum::<f64>() / 5.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_come_from_fit_segment_only() {
        let train = series(&[vec![0.0, 10.0]]);
        let test = series(&[vec![20.0]]);
        let nz = Normalizer::fit(&train, Normalization::MinMax);
        let out = nz.apply(&test).unwrap();
        // 20 is outside the train range [0, 10] so it maps beyond 1.0.
        assert!((out.at(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invert_roundtrips() {
        let s = series(&[vec![3.0, 7.0, -1.0, 4.0], vec![100.0, 120.0, 90.0, 110.0]]);
        for scheme in [
            Normalization::ZScore,
            Normalization::MinMax,
            Normalization::None,
        ] {
            let nz = Normalizer::fit(&s, scheme);
            let fwd = nz.apply(&s).unwrap();
            let back = nz.invert(&fwd).unwrap();
            for (a, b) in back.values().iter().zip(s.values()) {
                assert!((a - b).abs() < 1e-9, "{scheme:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn constant_channel_stays_finite() {
        let s = series(&[vec![5.0, 5.0, 5.0]]);
        let nz = Normalizer::fit(&s, Normalization::ZScore);
        let out = nz.apply(&s).unwrap();
        assert!(out.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dim_mismatch_is_error() {
        let s1 = series(&[vec![1.0, 2.0]]);
        let s2 = series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let nz = Normalizer::fit(&s1, Normalization::ZScore);
        assert!(nz.apply(&s2).is_err());
    }

    #[test]
    fn invert_block_per_channel() {
        let s = series(&[vec![0.0, 2.0], vec![0.0, 4.0]]);
        let nz = Normalizer::fit(&s, Normalization::MinMax);
        let mut block = vec![0.5, 0.5, 1.0, 1.0]; // two time steps, two channels
        nz.invert_block(&mut block, 2).unwrap();
        assert_eq!(block, vec![1.0, 2.0, 2.0, 4.0]);
    }
}

//! Missing-value handling for the data layer.
//!
//! Several of the paper's source datasets (METR-LA and PEMS most famously)
//! ship with gaps; a standardized pipeline has to fix them *identically for
//! every method*, or imputation choice becomes another hidden nuisance
//! parameter like "drop last". Missing points are represented as `NaN` in
//! the standardized format.

use crate::series::MultiSeries;
use crate::{DataError, Result};

/// How to fill missing (`NaN`) values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Imputation {
    /// Carry the last observed value forward (and the first observed value
    /// backward over a leading gap). TFB-style default: cheap and causal.
    #[default]
    ForwardFill,
    /// Linear interpolation between the surrounding observations (ends are
    /// extended flat).
    Linear,
    /// Replace with the value one seasonal period earlier when available,
    /// falling back to forward fill.
    Seasonal {
        /// Period in steps (0 = the series frequency's natural period).
        period: usize,
    },
}

/// Counts missing values per channel.
pub fn missing_counts(series: &MultiSeries) -> Vec<usize> {
    (0..series.dim())
        .map(|c| {
            (0..series.len())
                .filter(|&t| series.at(t, c).is_nan())
                .count()
        })
        .collect()
}

/// Returns an imputed copy of the series. Errors when a channel has no
/// observed value at all (nothing to impute from).
pub fn impute(series: &MultiSeries, how: Imputation) -> Result<MultiSeries> {
    let mut channels = series.to_channels();
    let period = match how {
        Imputation::Seasonal { period: 0 } => series.frequency.default_period(),
        Imputation::Seasonal { period } => period,
        _ => 0,
    };
    for ch in channels.iter_mut() {
        if ch.iter().all(|v| v.is_nan()) {
            return Err(DataError::InvalidRange("channel is entirely missing"));
        }
        match how {
            Imputation::ForwardFill => forward_fill(ch),
            Imputation::Linear => linear_fill(ch),
            Imputation::Seasonal { .. } => {
                seasonal_fill(ch, period.max(1));
                forward_fill(ch);
            }
        }
    }
    MultiSeries::from_channels(
        series.name.clone(),
        series.frequency,
        series.domain,
        &channels,
    )
}

fn forward_fill(ch: &mut [f64]) {
    // Backfill the leading gap from the first observation.
    if let Some(first) = ch.iter().position(|v| !v.is_nan()) {
        let v0 = ch[first];
        for v in ch[..first].iter_mut() {
            *v = v0;
        }
    }
    let mut last = ch[0];
    for v in ch.iter_mut() {
        if v.is_nan() {
            *v = last;
        } else {
            last = *v;
        }
    }
}

fn linear_fill(ch: &mut [f64]) {
    let n = ch.len();
    let mut t = 0;
    while t < n {
        if !ch[t].is_nan() {
            t += 1;
            continue;
        }
        // Gap [t, end).
        let end = (t..n).find(|&i| !ch[i].is_nan()).unwrap_or(n);
        let before = if t > 0 { Some(ch[t - 1]) } else { None };
        let after = if end < n { Some(ch[end]) } else { None };
        match (before, after) {
            (Some(a), Some(b)) => {
                let gap = (end - t + 1) as f64;
                for (k, v) in ch[t..end].iter_mut().enumerate() {
                    *v = a + (b - a) * (k + 1) as f64 / gap;
                }
            }
            (Some(a), None) => ch[t..end].iter_mut().for_each(|v| *v = a),
            (None, Some(b)) => ch[t..end].iter_mut().for_each(|v| *v = b),
            (None, None) => unreachable!("caller guarantees an observation"),
        }
        t = end;
    }
}

fn seasonal_fill(ch: &mut [f64], period: usize) {
    for t in 0..ch.len() {
        if ch[t].is_nan() && t >= period && !ch[t - period].is_nan() {
            ch[t] = ch[t - period];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Domain, Frequency};

    fn series(values: Vec<f64>, freq: Frequency) -> MultiSeries {
        MultiSeries::from_channels("g", freq, Domain::Traffic, &[values]).unwrap()
    }

    #[test]
    fn forward_fill_carries_last_value() {
        let s = series(
            vec![1.0, f64::NAN, f64::NAN, 4.0, f64::NAN],
            Frequency::Hourly,
        );
        let out = impute(&s, Imputation::ForwardFill).unwrap();
        assert_eq!(out.channel(0), vec![1.0, 1.0, 1.0, 4.0, 4.0]);
    }

    #[test]
    fn forward_fill_backfills_leading_gap() {
        let s = series(vec![f64::NAN, f64::NAN, 3.0, 4.0], Frequency::Hourly);
        let out = impute(&s, Imputation::ForwardFill).unwrap();
        assert_eq!(out.channel(0), vec![3.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn linear_fill_interpolates_interior_gaps() {
        let s = series(vec![0.0, f64::NAN, f64::NAN, 3.0], Frequency::Hourly);
        let out = impute(&s, Imputation::Linear).unwrap();
        assert_eq!(out.channel(0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn linear_fill_extends_ends_flat() {
        let s = series(vec![f64::NAN, 2.0, f64::NAN], Frequency::Hourly);
        let out = impute(&s, Imputation::Linear).unwrap();
        assert_eq!(out.channel(0), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn seasonal_fill_uses_previous_period() {
        let mut values: Vec<f64> = (0..12).map(|t| (t % 4) as f64 * 10.0).collect();
        values[6] = f64::NAN; // phase 2 -> should become values[2] = 20.0
        let s = series(values, Frequency::Hourly);
        let out = impute(&s, Imputation::Seasonal { period: 4 }).unwrap();
        assert_eq!(out.at(6, 0), 20.0);
    }

    #[test]
    fn seasonal_period_zero_uses_frequency() {
        let mut values: Vec<f64> = (0..72).map(|t| (t % 24) as f64).collect();
        values[30] = f64::NAN; // hour 6 of day 2 -> previous day's hour 6
        let s = series(values, Frequency::Hourly);
        let out = impute(&s, Imputation::Seasonal { period: 0 }).unwrap();
        assert_eq!(out.at(30, 0), 6.0);
    }

    #[test]
    fn all_missing_channel_errors() {
        let s = series(vec![f64::NAN, f64::NAN], Frequency::Hourly);
        assert!(impute(&s, Imputation::ForwardFill).is_err());
    }

    #[test]
    fn missing_counts_per_channel() {
        let s = MultiSeries::from_channels(
            "m",
            Frequency::Hourly,
            Domain::Traffic,
            &[vec![1.0, f64::NAN, 3.0], vec![f64::NAN, f64::NAN, 1.0]],
        )
        .unwrap();
        assert_eq!(missing_counts(&s), vec![1, 2]);
    }

    #[test]
    fn imputation_is_identity_on_complete_data() {
        let values: Vec<f64> = (0..50).map(|t| (t as f64).sin()).collect();
        let s = series(values.clone(), Frequency::Hourly);
        for how in [
            Imputation::ForwardFill,
            Imputation::Linear,
            Imputation::Seasonal { period: 5 },
        ] {
            let out = impute(&s, how).unwrap();
            assert_eq!(out.channel(0), values, "{how:?}");
        }
    }
}

//! Per-request tracing and tail-latency attribution.
//!
//! A [`RequestTrace`] follows one request from HTTP accept through the
//! coalescer batch into `predict_batch` and back out, splitting its
//! end-to-end latency into monotone, non-negative **phases**:
//!
//! * `parse`    — request body decode and validation
//! * `queue`    — from submit until the batcher opens a batch window
//! * `collect`  — waiting inside the window for co-travelers
//! * `infer`    — the request's amortized share of the batch forward
//!   (`predict_batch` wall time divided by the batch size)
//! * `dispatch` — residual routing time between the batcher answering
//!   and the handler observing the reply (clamped at zero)
//! * `write`    — response serialization and the socket write
//!
//! The amortization rule makes phases *sum* to the measured end-to-end
//! latency (within clock skew): every segment of the request's wall time
//! is attributed to exactly one phase, and the batch forward is shared
//! equally among the rows that rode in it.
//!
//! On [`finish`](RequestTrace::finish) a trace feeds four sinks, all
//! bounded: explicitly-bucketed per-phase latency histograms (for the
//! OpenMetrics exposition), the SLO tracker's rolling burn-rate windows,
//! the worst-N slow-request exemplar ring, and — when the run has a JSONL
//! sink — one `{"ev":"trace",…}` event carrying the full phase breakdown.
//!
//! Compiled without the `record` feature every type here is a zero-sized
//! no-op, exactly like the rest of the crate.

use crate::manifest::{SloSummary, TraceExemplar};
use std::time::Duration;

/// The phases one request's latency is attributed to, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Request body decode and validation.
    Parse,
    /// From submit until the batcher opens the batch window.
    Queue,
    /// Waiting inside the window for co-travelers.
    Collect,
    /// Amortized share of the batch `predict_batch` call.
    Infer,
    /// Residual routing time from batcher reply to handler wake-up.
    Dispatch,
    /// Response serialization and socket write.
    Write,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 6;

impl Phase {
    /// Every phase, in causal order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Parse,
        Phase::Queue,
        Phase::Collect,
        Phase::Infer,
        Phase::Dispatch,
        Phase::Write,
    ];

    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Queue => "queue",
            Phase::Collect => "collect",
            Phase::Infer => "infer",
            Phase::Dispatch => "dispatch",
            Phase::Write => "write",
        }
    }

    /// Index into per-phase tables.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How a traced request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    /// Answered successfully.
    Ok,
    /// Shed by backpressure (HTTP 429).
    Shed,
    /// Any other failure (4xx/5xx).
    Error,
}

impl TraceStatus {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            TraceStatus::Ok => "ok",
            TraceStatus::Shed => "shed",
            TraceStatus::Error => "error",
        }
    }
}

/// Explicit histogram bucket upper bounds, in seconds (an `+Inf`
/// overflow bucket is appended after the last bound).
pub const BUCKET_BOUNDS_S: [f64; 14] = [
    50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0,
];

/// Bucket count including the `+Inf` overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_S.len() + 1;

/// How many slow-request exemplars the ring keeps.
pub const EXEMPLAR_CAP: usize = 8;

/// Fast-window burn rate at which a finished request triggers a flight
/// dump: burning the error budget ≥ 10× faster than the objective
/// allows is an incident, not noise.
pub const BURN_DUMP_THRESHOLD: f64 = 10.0;

/// Minimum requests in the fast window before the burn-rate trigger can
/// fire — one cold-start breach alone must not dump a bundle.
pub const BURN_DUMP_MIN_REQUESTS: u64 = 16;

/// One phase's explicitly-bucketed latency histogram, as captured by
/// [`snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBuckets {
    /// Phase label (`parse`, …, `write`, or `total`).
    pub phase: String,
    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub counts: Vec<u64>,
    /// Total observations (sum of `counts`).
    pub count: u64,
    /// Sum of all observed durations, in seconds.
    pub sum_s: f64,
}

impl PhaseBuckets {
    /// Cumulative counts in bound order (last entry equals `count`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Upper bound of the bucket where the cumulative count first
    /// reaches `q` (0..=1) of the total; observations past the last
    /// finite bound report that bound. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return BUCKET_BOUNDS_S
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_S[BUCKET_BOUNDS_S.len() - 1]);
            }
        }
        BUCKET_BOUNDS_S[BUCKET_BOUNDS_S.len() - 1]
    }
}

/// SLO target the tracker scores requests against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Latency threshold a request must beat to count as good.
    pub threshold: Duration,
    /// Availability objective (e.g. `0.99` = 1% error budget).
    pub objective: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            threshold: Duration::from_millis(50),
            objective: 0.99,
        }
    }
}

/// Point-in-time view of the trace registries: per-phase bucketed
/// histograms, status counts, the SLO reading and the exemplar ring.
/// Empty (and valid) in the no-op build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// One entry per phase plus a final `total` entry.
    pub phases: Vec<PhaseBuckets>,
    /// `(status label, count)` in label order; only non-zero entries.
    pub statuses: Vec<(String, u64)>,
    /// SLO reading; `None` in the no-op build.
    pub slo: Option<SloSummary>,
    /// Worst-N slow requests, slowest first.
    pub exemplars: Vec<TraceExemplar>,
}

#[cfg(feature = "record")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    struct PhaseHist {
        counts: [AtomicU64; BUCKET_COUNT],
        count: AtomicU64,
        sum_ns: AtomicU64,
    }

    impl PhaseHist {
        const fn new() -> PhaseHist {
            PhaseHist {
                counts: [const { AtomicU64::new(0) }; BUCKET_COUNT],
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
            }
        }

        fn record_ns(&self, ns: u64) {
            let s = ns as f64 / 1e9;
            let idx = BUCKET_BOUNDS_S
                .iter()
                .position(|&b| s <= b)
                .unwrap_or(BUCKET_BOUNDS_S.len());
            self.counts[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        }

        fn reset(&self) {
            for c in &self.counts {
                c.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum_ns.store(0, Ordering::Relaxed);
        }

        fn snapshot(&self, phase: &str) -> PhaseBuckets {
            PhaseBuckets {
                phase: phase.to_string(),
                counts: self
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: self.count.load(Ordering::Relaxed),
                sum_s: self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9,
            }
        }
    }

    /// Per-phase histograms; the final slot is the end-to-end total.
    static PHASE_HISTS: [PhaseHist; PHASE_COUNT + 1] =
        [const { PhaseHist::new() }; PHASE_COUNT + 1];
    static STATUS_COUNTS: [AtomicU64; 3] = [const { AtomicU64::new(0) }; 3];
    static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);
    static SLO: Mutex<Option<SloState>> = Mutex::new(None);
    static EXEMPLARS: Mutex<Vec<TraceExemplar>> = Mutex::new(Vec::new());

    /// Per-process salt so trace ids from different serve sessions never
    /// collide in a shared log.
    fn salt() -> u64 {
        static SALT: OnceLock<u64> = OnceLock::new();
        *SALT.get_or_init(|| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64);
            (t ^ ((std::process::id() as u64) << 17)) & 0xffff_ffff
        })
    }

    const WINDOW_SLOTS: usize = 16;

    /// One rolling window as a ring of fixed-width time slots; stale
    /// slots are overwritten lazily, so recording is O(1).
    struct RollingWindow {
        slot_width_s: u64,
        /// `(slot index, total, bad)` per ring entry.
        slots: [(u64, u64, u64); WINDOW_SLOTS],
    }

    impl RollingWindow {
        fn new(slot_width_s: u64) -> RollingWindow {
            RollingWindow {
                slot_width_s,
                slots: [(u64::MAX, 0, 0); WINDOW_SLOTS],
            }
        }

        fn record(&mut self, elapsed_s: u64, bad: bool) {
            let slot = elapsed_s / self.slot_width_s;
            let e = &mut self.slots[(slot as usize) % WINDOW_SLOTS];
            if e.0 != slot {
                *e = (slot, 0, 0);
            }
            e.1 += 1;
            if bad {
                e.2 += 1;
            }
        }

        /// `(total, bad)` over the slots still inside the window.
        fn tally(&self, elapsed_s: u64) -> (u64, u64) {
            let now_slot = elapsed_s / self.slot_width_s;
            let mut total = 0;
            let mut bad = 0;
            for &(slot, t, b) in &self.slots {
                if slot != u64::MAX && now_slot.saturating_sub(slot) < WINDOW_SLOTS as u64 {
                    total += t;
                    bad += b;
                }
            }
            (total, bad)
        }
    }

    struct SloState {
        cfg: SloConfig,
        anchor: Instant,
        total: u64,
        breaches: u64,
        /// ~1 minute window (4 s × 16 slots).
        fast: RollingWindow,
        /// ~5 minute window (20 s × 16 slots).
        slow: RollingWindow,
    }

    impl SloState {
        fn new(cfg: SloConfig) -> SloState {
            SloState {
                cfg,
                anchor: Instant::now(),
                total: 0,
                breaches: 0,
                fast: RollingWindow::new(4),
                slow: RollingWindow::new(20),
            }
        }

        fn record(&mut self, total_ns: u64) {
            let bad = total_ns > self.cfg.threshold.as_nanos() as u64;
            self.total += 1;
            if bad {
                self.breaches += 1;
            }
            let elapsed = self.anchor.elapsed().as_secs();
            self.fast.record(elapsed, bad);
            self.slow.record(elapsed, bad);
        }

        /// Burn rate of one window: the fraction of requests breaching
        /// the threshold, divided by the error budget `1 − objective`.
        /// A sustained rate of 1.0 exactly exhausts the budget.
        fn burn_rate(&self, window: &RollingWindow) -> f64 {
            let (total, bad) = window.tally(self.anchor.elapsed().as_secs());
            if total == 0 {
                return 0.0;
            }
            let budget = (1.0 - self.cfg.objective).max(1e-9);
            (bad as f64 / total as f64) / budget
        }

        fn summary(&self) -> SloSummary {
            SloSummary {
                threshold_ms: self.cfg.threshold.as_secs_f64() * 1e3,
                objective: self.cfg.objective,
                total: self.total,
                breaches: self.breaches,
                burn_rate_1m: self.burn_rate(&self.fast),
                burn_rate_5m: self.burn_rate(&self.slow),
            }
        }
    }

    /// Sets the SLO target the tracker scores subsequent requests
    /// against (and resets its windows). [`start_run`](crate::start_run)
    /// resets to the default target.
    pub fn configure_slo(cfg: SloConfig) {
        *SLO.lock().expect("slo state poisoned") = Some(SloState::new(cfg));
    }

    /// Back to the empty state; called by `start_run`.
    pub(crate) fn reset_state() {
        for h in &PHASE_HISTS {
            h.reset();
        }
        for c in &STATUS_COUNTS {
            c.store(0, Ordering::Relaxed);
        }
        *SLO.lock().expect("slo state poisoned") = None;
        EXEMPLARS.lock().expect("exemplar ring poisoned").clear();
    }

    /// Point-in-time [`TraceSnapshot`] of the live trace registries.
    pub fn snapshot() -> TraceSnapshot {
        let mut phases: Vec<PhaseBuckets> = Phase::ALL
            .iter()
            .map(|p| PHASE_HISTS[p.index()].snapshot(p.label()))
            .collect();
        phases.push(PHASE_HISTS[PHASE_COUNT].snapshot("total"));
        let statuses = [TraceStatus::Ok, TraceStatus::Shed, TraceStatus::Error]
            .iter()
            .filter_map(|s| {
                let n = STATUS_COUNTS[*s as usize].load(Ordering::Relaxed);
                (n > 0).then(|| (s.label().to_string(), n))
            })
            .collect();
        let slo = Some(
            SLO.lock()
                .expect("slo state poisoned")
                .as_ref()
                .map(|s| s.summary())
                .unwrap_or_else(|| SloState::new(SloConfig::default()).summary()),
        );
        let exemplars = EXEMPLARS.lock().expect("exemplar ring poisoned").clone();
        TraceSnapshot {
            phases,
            statuses,
            slo,
            exemplars,
        }
    }

    struct Active {
        id: u64,
        start: Instant,
        last: Instant,
        phase_ns: [u64; PHASE_COUNT],
        batch_id: Option<u64>,
        batch_size: u64,
        status: TraceStatus,
    }

    /// One request's trace context: a process-unique id plus per-phase
    /// monotone timings. Inert (a `None`) outside a run.
    pub struct RequestTrace {
        active: Option<Box<Active>>,
    }

    impl RequestTrace {
        /// Starts tracing one request; inert when no run is recording.
        pub fn begin() -> RequestTrace {
            if !crate::enabled() {
                return RequestTrace { active: None };
            }
            let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
            let now = Instant::now();
            RequestTrace {
                active: Some(Box::new(Active {
                    id: (salt() << 32) | (seq & 0xffff_ffff),
                    start: now,
                    last: now,
                    phase_ns: [0; PHASE_COUNT],
                    batch_id: None,
                    batch_size: 0,
                    status: TraceStatus::Ok,
                })),
            }
        }

        /// Whether this trace is live (a run was recording at `begin`).
        pub fn active(&self) -> bool {
            self.active.is_some()
        }

        /// The trace id as 16 hex digits (`None` when inert) — what the
        /// `X-Tfb-Trace-Id` response header carries.
        pub fn id_hex(&self) -> Option<String> {
            self.active.as_ref().map(|a| format!("{:016x}", a.id))
        }

        /// The raw trace id (`None` when inert) — for callers that
        /// format the header themselves without allocating.
        pub fn id(&self) -> Option<u64> {
            self.active.as_ref().map(|a| a.id)
        }

        /// Attributes the wall time since the previous mark to `phase`.
        pub fn mark(&mut self, phase: Phase) {
            if let Some(a) = self.active.as_mut() {
                let now = Instant::now();
                a.phase_ns[phase.index()] += now.duration_since(a.last).as_nanos() as u64;
                a.last = now;
            }
        }

        /// Adds externally-measured time to `phase` without advancing
        /// the mark clock (test hook; phases stay non-negative).
        pub fn add_phase_ns(&mut self, phase: Phase, ns: u64) {
            if let Some(a) = self.active.as_mut() {
                a.phase_ns[phase.index()] += ns;
            }
        }

        /// Absorbs the coalescer's per-request timing: queue/collect
        /// are measured by the batcher, `infer_ns` is the amortized
        /// batch-forward share, and the residual since the last mark —
        /// reply routing and the handler wake-up — lands in `dispatch`
        /// (clamped at zero against cross-thread clock skew).
        pub fn absorb_batch(
            &mut self,
            queue_ns: u64,
            collect_ns: u64,
            infer_ns: u64,
            batch_id: u64,
            batch_size: u64,
        ) {
            if let Some(a) = self.active.as_mut() {
                let now = Instant::now();
                let since_last = now.duration_since(a.last).as_nanos() as u64;
                a.phase_ns[Phase::Queue.index()] += queue_ns;
                a.phase_ns[Phase::Collect.index()] += collect_ns;
                a.phase_ns[Phase::Infer.index()] += infer_ns;
                a.phase_ns[Phase::Dispatch.index()] +=
                    since_last.saturating_sub(queue_ns + collect_ns + infer_ns);
                a.last = now;
                a.batch_id = Some(batch_id);
                a.batch_size = batch_size;
            }
        }

        /// Records how the request ended (defaults to `Ok`).
        pub fn set_status(&mut self, status: TraceStatus) {
            if let Some(a) = self.active.as_mut() {
                a.status = status;
            }
        }

        /// Closes the trace: feeds the phase histograms, status counts,
        /// SLO windows and exemplar ring, and appends one `trace` event
        /// to the run's JSONL sink when one is open.
        pub fn finish(self) {
            let Some(a) = self.active else { return };
            let total_ns = a.start.elapsed().as_nanos() as u64;
            for p in Phase::ALL {
                let ns = a.phase_ns[p.index()];
                if ns > 0 {
                    PHASE_HISTS[p.index()].record_ns(ns);
                }
            }
            PHASE_HISTS[PHASE_COUNT].record_ns(total_ns);
            STATUS_COUNTS[a.status as usize].fetch_add(1, Ordering::Relaxed);
            let (fast_burn, fast_total) = {
                let mut slo = SLO.lock().expect("slo state poisoned");
                let s = slo.get_or_insert_with(|| SloState::new(SloConfig::default()));
                s.record(total_ns);
                let (total, _) = s.fast.tally(s.anchor.elapsed().as_secs());
                (s.burn_rate(&s.fast), total)
            };
            offer_exemplar(&a, total_ns);
            // A fast-window burn rate ≥ 10× budget is a flight trigger
            // once enough requests back it (a cold first request alone
            // must not dump). The dump itself is rate-limited, so a
            // sustained breach costs one bundle, not one per request.
            if fast_burn >= BURN_DUMP_THRESHOLD && fast_total >= BURN_DUMP_MIN_REQUESTS {
                crate::flight::dump("slo-burn-rate");
            }
            crate::record::emit_trace_event(
                a.id,
                a.status,
                total_ns,
                &a.phase_ns,
                a.batch_id,
                a.batch_size,
            );
        }
    }

    /// Keeps the worst [`EXEMPLAR_CAP`] traces by total latency,
    /// slowest first.
    fn offer_exemplar(a: &Active, total_ns: u64) {
        let mut ring = EXEMPLARS.lock().expect("exemplar ring poisoned");
        if ring.len() >= EXEMPLAR_CAP && ring.last().is_some_and(|w| total_ns <= w.total_ns) {
            return;
        }
        ring.push(TraceExemplar {
            trace_id: format!("{:016x}", a.id),
            total_ns,
            batch_size: a.batch_size,
            phases: Phase::ALL
                .iter()
                .filter(|p| a.phase_ns[p.index()] > 0)
                .map(|p| (p.label().to_string(), a.phase_ns[p.index()]))
                .collect(),
        });
        ring.sort_by(|x, y| {
            y.total_ns
                .cmp(&x.total_ns)
                .then(x.trace_id.cmp(&y.trace_id))
        });
        ring.truncate(EXEMPLAR_CAP);
    }
}

#[cfg(not(feature = "record"))]
mod imp {
    use super::*;

    /// Zero-sized trace stub (no-op build).
    pub struct RequestTrace;

    impl RequestTrace {
        /// No-op.
        #[inline(always)]
        pub fn begin() -> RequestTrace {
            RequestTrace
        }

        /// Always `false` in the no-op build.
        #[inline(always)]
        pub fn active(&self) -> bool {
            false
        }

        /// Always `None` in the no-op build.
        #[inline(always)]
        pub fn id_hex(&self) -> Option<String> {
            None
        }

        /// Always `None` in the no-op build.
        #[inline(always)]
        pub fn id(&self) -> Option<u64> {
            None
        }

        /// No-op.
        #[inline(always)]
        pub fn mark(&mut self, _phase: Phase) {}

        /// No-op.
        #[inline(always)]
        pub fn add_phase_ns(&mut self, _phase: Phase, _ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn absorb_batch(
            &mut self,
            _queue_ns: u64,
            _collect_ns: u64,
            _infer_ns: u64,
            _batch_id: u64,
            _batch_size: u64,
        ) {
        }

        /// No-op.
        #[inline(always)]
        pub fn set_status(&mut self, _status: TraceStatus) {}

        /// No-op.
        #[inline(always)]
        pub fn finish(self) {}
    }

    /// No-op.
    #[inline(always)]
    pub fn configure_slo(_cfg: SloConfig) {}

    /// Always empty (and a valid, empty OpenMetrics exposition).
    #[inline(always)]
    pub fn snapshot() -> TraceSnapshot {
        TraceSnapshot::default()
    }
}

#[cfg(feature = "record")]
pub(crate) use imp::reset_state;
pub use imp::{configure_slo, snapshot, RequestTrace};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_and_order_are_stable() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["parse", "queue", "collect", "infer", "dispatch", "write"]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn bucket_quantiles_from_counts() {
        let mut b = PhaseBuckets {
            phase: "total".into(),
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum_s: 0.0,
        };
        assert!(b.quantile(0.5).is_nan());
        // 90 observations in the 1 ms bucket, 10 in the 50 ms bucket.
        b.counts[4] = 90;
        b.counts[9] = 10;
        b.count = 100;
        assert_eq!(b.quantile(0.5), 1e-3);
        assert_eq!(b.quantile(0.9), 1e-3);
        assert_eq!(b.quantile(0.99), 50e-3);
        let cum = b.cumulative();
        assert_eq!(cum.last().copied(), Some(100));
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn overflow_bucket_quantile_reports_last_finite_bound() {
        let mut counts = vec![0; BUCKET_COUNT];
        counts[BUCKET_COUNT - 1] = 5;
        let b = PhaseBuckets {
            phase: "total".into(),
            counts,
            count: 5,
            sum_s: 10.0,
        };
        assert_eq!(b.quantile(0.99), BUCKET_BOUNDS_S[BUCKET_BOUNDS_S.len() - 1]);
    }
}

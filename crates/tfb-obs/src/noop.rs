//! The compile-time no-op recorder: every entry point of `record.rs`
//! mirrored as an empty inline function over zero-sized types. Built when
//! the `record` feature is off, this makes instrumented call sites in the
//! rest of the workspace provably free — there is no atomic, no branch,
//! nothing for the optimizer to even remove.

use crate::manifest::{HealthKind, Manifest, MetricsSnapshot};
use std::fmt::Display;
use std::path::PathBuf;

/// Always `false` in the no-op build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op.
#[inline(always)]
pub fn report_metric(_dataset: &str, _method: &str, _horizon: usize, _name: &str, _value: f64) {}

/// No-op.
#[inline(always)]
pub fn health_event(_kind: HealthKind, _detail: &str) {}

/// No-op.
#[inline(always)]
pub fn record_grad_norm(_value: f64) {}

/// No-op.
#[inline(always)]
pub fn steal_event(_from: usize, _to: usize, _moved: usize) {}

/// Mirrors [`record::RunOptions`](crate::RunOptions); carried for API
/// parity, never read.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Ignored in the no-op build.
    pub events_path: Option<PathBuf>,
}

/// No-op; always succeeds.
#[inline(always)]
pub fn start_run(_opts: RunOptions) -> std::io::Result<()> {
    Ok(())
}

/// No-op; there is never an active run.
#[inline(always)]
pub fn finish_run(_meta: &[(&str, String)]) -> Option<Manifest> {
    None
}

/// Always empty; there are no live registries in the no-op build.
#[inline(always)]
pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}

/// Zero-sized span guard.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span;

impl Span {
    /// No-op.
    #[inline(always)]
    pub fn enter(_name: &'static str) -> Span {
        Span
    }

    /// No-op.
    #[inline(always)]
    pub fn with(self, _key: &'static str, _value: &dyn Display) -> Span {
        self
    }

    /// No-op.
    #[inline(always)]
    pub fn record(self, _key: &'static str, _value: f64) -> Span {
        self
    }

    /// No-op.
    #[inline(always)]
    pub fn close(self) {}
}

/// Zero-sized counter stub.
pub struct Counter;

impl Counter {
    /// No-op (const: usable in statics).
    pub const fn new(_name: &'static str) -> Counter {
        Counter
    }

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// Zero-sized gauge stub.
pub struct Gauge;

impl Gauge {
    /// No-op (const: usable in statics).
    pub const fn new(_name: &'static str) -> Gauge {
        Gauge
    }

    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// Zero-sized histogram stub.
pub struct Histogram;

impl Histogram {
    /// No-op (const: usable in statics).
    pub const fn new(_name: &'static str) -> Histogram {
        Histogram
    }

    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: f64) {}
}

//! OpenMetrics text exposition (encoder + in-repo validator).
//!
//! [`render`] turns a live [`MetricsSnapshot`] plus a
//! [`TraceSnapshot`](crate::trace::TraceSnapshot) into the OpenMetrics
//! text format the serve layer exposes on `GET /metrics`:
//!
//! * every tfb counter/gauge maps to a family named
//!   `tfb_<name-with-/-as-_>` (`serve/shed` → `tfb_serve_shed_total`);
//! * reservoir histograms render as `summary` families with
//!   `quantile` labels (their percentiles are already computed);
//! * the per-phase trace histograms render as real `histogram`
//!   families with explicit cumulative `le` buckets
//!   (`tfb_request_phase_seconds{phase="queue"}`) plus an unlabelled
//!   end-to-end family `tfb_request_seconds`;
//! * the SLO tracker surfaces as `tfb_slo_*` gauges (threshold,
//!   objective, rolling burn rates) and counters (scored / breached);
//! * the slow-request exemplar ring surfaces as
//!   `tfb_slow_request_seconds{trace_id="…"}` gauges with a per-phase
//!   breakdown family next to it.
//!
//! A disarmed (no-op) build renders the empty-but-valid exposition —
//! just the `# EOF` terminator.
//!
//! [`validate`] is the tiny validator CI runs against the live
//! endpoint: line grammar, `# TYPE` before samples, family grouping,
//! counter `_total` suffixes, cumulative `le` buckets ending in a
//! `+Inf` bucket that equals `_count`, and the final `# EOF`.

use crate::manifest::MetricsSnapshot;
use crate::trace::{PhaseBuckets, TraceSnapshot, BUCKET_BOUNDS_S};
use std::collections::HashMap;

/// The content type the exposition is served under.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Maps a tfb metric name (`serve/batch_size`) to an OpenMetrics family
/// name (`tfb_serve_batch_size`).
pub fn family_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tfb_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Canonical float rendering: `+Inf` for infinity, a trailing `.0` for
/// integral values so `le`/quantile labels stay unambiguous floats.
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if v.is_nan() {
        return "NaN".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_bucket_family(
    out: &mut String,
    family: &str,
    label: Option<(&str, &str)>,
    b: &PhaseBuckets,
) {
    let labels = |extra: Option<(&str, String)>| -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some((k, v)) = label {
            parts.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let mut acc = 0u64;
    for (i, &c) in b.counts.iter().enumerate() {
        acc += c;
        let le = BUCKET_BOUNDS_S
            .get(i)
            .map(|&bound| fmt_f64(bound))
            .unwrap_or_else(|| "+Inf".into());
        out.push_str(&format!(
            "{family}_bucket{} {acc}\n",
            labels(Some(("le", le)))
        ));
    }
    out.push_str(&format!("{family}_count{} {}\n", labels(None), b.count));
    out.push_str(&format!(
        "{family}_sum{} {}\n",
        labels(None),
        fmt_f64(b.sum_s)
    ));
}

/// Renders the full OpenMetrics exposition for a metrics + trace
/// snapshot pair. Deterministic for a given input; always ends with
/// `# EOF`.
pub fn render(metrics: &MetricsSnapshot, trace: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, value) in &metrics.counters {
        let f = family_name(name);
        out.push_str(&format!("# TYPE {f} counter\n{f}_total {value}\n"));
    }
    for (name, value) in &metrics.gauges {
        let f = family_name(name);
        out.push_str(&format!("# TYPE {f} gauge\n{f} {}\n", fmt_f64(*value)));
    }
    for h in &metrics.histograms {
        if h.count == 0 {
            continue;
        }
        let f = family_name(&h.name);
        out.push_str(&format!("# TYPE {f} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            if v.is_finite() {
                out.push_str(&format!("{f}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
            }
        }
        out.push_str(&format!(
            "{f}_sum {}\n{f}_count {}\n",
            fmt_f64(h.mean * h.count as f64),
            h.count
        ));
    }
    let phase_families: Vec<&PhaseBuckets> =
        trace.phases.iter().filter(|b| b.phase != "total").collect();
    if !phase_families.is_empty() {
        out.push_str("# HELP tfb_request_phase_seconds Per-phase request latency attribution.\n");
        out.push_str("# TYPE tfb_request_phase_seconds histogram\n");
        for b in &phase_families {
            push_bucket_family(
                &mut out,
                "tfb_request_phase_seconds",
                Some(("phase", &b.phase)),
                b,
            );
        }
    }
    if let Some(total) = trace.phases.iter().find(|b| b.phase == "total") {
        out.push_str("# HELP tfb_request_seconds End-to-end request latency.\n");
        out.push_str("# TYPE tfb_request_seconds histogram\n");
        push_bucket_family(&mut out, "tfb_request_seconds", None, total);
    }
    if !trace.statuses.is_empty() {
        out.push_str("# TYPE tfb_requests counter\n");
        for (status, count) in &trace.statuses {
            out.push_str(&format!(
                "tfb_requests_total{{status=\"{}\"}} {count}\n",
                escape_label(status)
            ));
        }
    }
    if let Some(slo) = &trace.slo {
        out.push_str(&format!(
            "# TYPE tfb_slo_threshold_seconds gauge\ntfb_slo_threshold_seconds {}\n",
            fmt_f64(slo.threshold_ms / 1e3)
        ));
        out.push_str(&format!(
            "# TYPE tfb_slo_objective gauge\ntfb_slo_objective {}\n",
            fmt_f64(slo.objective)
        ));
        out.push_str("# HELP tfb_slo_burn_rate Fraction of the error budget burned per window.\n");
        out.push_str(&format!(
            "# TYPE tfb_slo_burn_rate gauge\ntfb_slo_burn_rate{{window=\"1m\"}} {}\ntfb_slo_burn_rate{{window=\"5m\"}} {}\n",
            fmt_f64(slo.burn_rate_1m),
            fmt_f64(slo.burn_rate_5m)
        ));
        out.push_str(&format!(
            "# TYPE tfb_slo_scored counter\ntfb_slo_scored_total {}\n",
            slo.total
        ));
        out.push_str(&format!(
            "# TYPE tfb_slo_breaches counter\ntfb_slo_breaches_total {}\n",
            slo.breaches
        ));
    }
    if !trace.exemplars.is_empty() {
        out.push_str("# HELP tfb_slow_request_seconds Worst-N slow-request exemplar ring.\n");
        out.push_str("# TYPE tfb_slow_request_seconds gauge\n");
        for e in &trace.exemplars {
            out.push_str(&format!(
                "tfb_slow_request_seconds{{trace_id=\"{}\"}} {}\n",
                escape_label(&e.trace_id),
                fmt_f64(e.total_ns as f64 / 1e9)
            ));
        }
        out.push_str("# TYPE tfb_slow_request_phase_seconds gauge\n");
        for e in &trace.exemplars {
            for (phase, ns) in &e.phases {
                out.push_str(&format!(
                    "tfb_slow_request_phase_seconds{{trace_id=\"{}\",phase=\"{}\"}} {}\n",
                    escape_label(&e.trace_id),
                    escape_label(phase),
                    fmt_f64(*ns as f64 / 1e9)
                ));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Renders the exposition for the live registries — what `GET /metrics`
/// serves. Empty-but-valid when recording is disarmed or compiled out.
pub fn render_live() -> String {
    render(&crate::metrics_snapshot(), &crate::trace::snapshot())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyType {
    Counter,
    Gauge,
    Histogram,
    Summary,
}

/// Per-family bookkeeping while validating.
struct FamilyCheck {
    kind: FamilyType,
    /// Histogram buckets keyed by the labelset minus `le`:
    /// `(le, cumulative value)` in appearance order.
    buckets: HashMap<String, Vec<(f64, f64)>>,
    /// `_count` values keyed by labelset.
    counts: HashMap<String, f64>,
}

/// A parsed metric sample: (family name, labels, value).
type Sample = (String, Vec<(String, String)>, f64);

/// Splits `name{a="b"} 1.5` into (name, labels, value); rejects
/// timestamps and garbage.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value_part) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: {line}"))?;
            if close < open {
                return Err(format!("malformed labels: {line}"));
            }
            (
                (&line[..open], parse_labels(&line[open + 1..close])?),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            ((name, Vec::new()), it.next().unwrap_or("").trim())
        }
    };
    let (name, labels) = name_labels;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name in: {line}"));
    }
    let mut tokens = value_part.split_whitespace();
    let value_tok = tokens
        .next()
        .ok_or_else(|| format!("sample without value: {line}"))?;
    if tokens.next().is_some() {
        return Err(format!("unexpected trailing tokens (timestamp?): {line}"));
    }
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("non-numeric sample value {v:?} in: {line}"))?,
    };
    Ok((name.to_string(), labels, value))
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value: {rest}"));
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, e)) = chars.next() {
                        value.push(match e {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest}"))?;
        labels.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels, got: {rest}"));
        }
    }
    Ok(labels)
}

fn labelset_key(labels: &[(String, String)], skip: &str) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != skip)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    parts.sort();
    parts.join(",")
}

/// Which declared family a sample name belongs to, with the suffix it
/// used. Longest family-name match wins so `x_bucket` resolves to the
/// histogram `x`, not a gauge named `x_bucket`.
fn resolve_family<'a>(
    name: &str,
    families: &'a HashMap<String, FamilyCheck>,
) -> Option<(String, &'a FamilyCheck, String)> {
    let mut best: Option<(String, String)> = None;
    for suffix in ["", "_total", "_bucket", "_count", "_sum"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.contains_key(stem)
                && best.as_ref().is_none_or(|(b, _)| stem.len() > b.len())
            {
                best = Some((stem.to_string(), suffix.to_string()));
            }
        }
    }
    let (stem, suffix) = best?;
    let fam = families.get(&stem)?;
    Some((stem, fam, suffix))
}

/// Validates one OpenMetrics text exposition. Returns the first problem
/// found, or `Ok(())` for a conforming document (the empty exposition —
/// just `# EOF` — is conforming).
pub fn validate(text: &str) -> Result<(), String> {
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let lines: Vec<&str> = text.lines().collect();
    if lines.last() != Some(&"# EOF") {
        return Err("exposition must end with '# EOF'".into());
    }
    let mut families: HashMap<String, FamilyCheck> = HashMap::new();
    let mut closed: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    let switch_to = |family: &str,
                     current: &mut Option<String>,
                     closed: &mut Vec<String>|
     -> Result<(), String> {
        if current.as_deref() == Some(family) {
            return Ok(());
        }
        if closed.iter().any(|c| c == family) {
            return Err(format!(
                "family {family} is interleaved with another family"
            ));
        }
        if let Some(prev) = current.take() {
            closed.push(prev);
        }
        *current = Some(family.to_string());
        Ok(())
    };
    for (idx, line) in lines.iter().enumerate() {
        let is_last = idx == lines.len() - 1;
        if *line == "# EOF" {
            if !is_last {
                return Err("'# EOF' before the end of the exposition".into());
            }
            break;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_string();
            let kind = match it.next() {
                Some("counter") => FamilyType::Counter,
                Some("gauge") => FamilyType::Gauge,
                Some("histogram") => FamilyType::Histogram,
                Some("summary") => FamilyType::Summary,
                other => return Err(format!("unsupported TYPE {other:?} for {name}")),
            };
            if families.contains_key(&name) {
                return Err(format!("duplicate TYPE for family {name}"));
            }
            switch_to(&name, &mut current, &mut closed)?;
            families.insert(
                name,
                FamilyCheck {
                    kind,
                    buckets: HashMap::new(),
                    counts: HashMap::new(),
                },
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            switch_to(name, &mut current, &mut closed)?;
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment line: {line}"));
        }
        let (name, labels, value) = parse_sample(line)?;
        let Some((stem, fam, suffix)) = resolve_family(&name, &families) else {
            return Err(format!("sample {name} has no preceding # TYPE"));
        };
        let kind = fam.kind;
        switch_to(&stem, &mut current, &mut closed)?;
        let ok_suffix = match kind {
            FamilyType::Counter => suffix == "_total",
            FamilyType::Gauge => suffix.is_empty(),
            FamilyType::Histogram => matches!(suffix.as_str(), "_bucket" | "_count" | "_sum"),
            FamilyType::Summary => matches!(suffix.as_str(), "" | "_count" | "_sum"),
        };
        if !ok_suffix {
            return Err(format!(
                "sample {name} has suffix {suffix:?}, invalid for its family type"
            ));
        }
        if kind == FamilyType::Counter && (!value.is_finite() || value < 0.0) {
            return Err(format!(
                "counter {name} has non-monotone-safe value {value}"
            ));
        }
        if kind == FamilyType::Summary
            && suffix.is_empty()
            && !labels.iter().any(|(k, _)| k == "quantile")
        {
            return Err(format!("summary sample {name} without a quantile label"));
        }
        if kind == FamilyType::Histogram {
            let fam = families.get_mut(&stem).expect("family just resolved");
            match suffix.as_str() {
                "_bucket" => {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| format!("bucket sample {name} without le label"))?;
                    let le = match le {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse::<f64>()
                            .map_err(|_| format!("non-numeric le {v:?} on {name}"))?,
                    };
                    fam.buckets
                        .entry(labelset_key(&labels, "le"))
                        .or_default()
                        .push((le, value));
                }
                "_count" => {
                    fam.counts.insert(labelset_key(&labels, "le"), value);
                }
                _ => {}
            }
        }
    }
    for (name, fam) in &families {
        for (labelset, buckets) in &fam.buckets {
            let mut prev = f64::NEG_INFINITY;
            let mut prev_v = -1.0;
            for &(le, v) in buckets {
                if le <= prev {
                    return Err(format!(
                        "{name}{{{labelset}}}: le buckets out of ascending order"
                    ));
                }
                if v < prev_v {
                    return Err(format!(
                        "{name}{{{labelset}}}: bucket values are not cumulative"
                    ));
                }
                prev = le;
                prev_v = v;
            }
            let Some(&(last_le, last_v)) = buckets.last() else {
                continue;
            };
            if !last_le.is_infinite() {
                return Err(format!("{name}{{{labelset}}}: missing le=\"+Inf\" bucket"));
            }
            if let Some(&count) = fam.counts.get(labelset) {
                if last_v != count {
                    return Err(format!(
                        "{name}{{{labelset}}}: +Inf bucket {last_v} != _count {count}"
                    ));
                }
            } else {
                return Err(format!("{name}{{{labelset}}}: histogram without _count"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{HistSummary, SloSummary, TraceExemplar};
    use crate::trace::BUCKET_COUNT;

    fn sample_trace_snapshot() -> TraceSnapshot {
        let mut counts = vec![0u64; BUCKET_COUNT];
        counts[4] = 7; // le = 1 ms
        counts[9] = 2; // le = 50 ms
        let phase = |name: &str| PhaseBuckets {
            phase: name.to_string(),
            counts: counts.clone(),
            count: 9,
            sum_s: 0.2,
        };
        TraceSnapshot {
            phases: vec![phase("parse"), phase("infer"), phase("total")],
            statuses: vec![("ok".into(), 8), ("shed".into(), 1)],
            slo: Some(SloSummary {
                threshold_ms: 50.0,
                objective: 0.99,
                total: 9,
                breaches: 1,
                burn_rate_1m: 11.1,
                burn_rate_5m: 2.2,
            }),
            exemplars: vec![TraceExemplar {
                trace_id: "deadbeefdeadbeef".into(),
                total_ns: 80_000_000,
                batch_size: 3,
                phases: vec![("queue".into(), 1_000_000), ("infer".into(), 79_000_000)],
            }],
        }
    }

    fn sample_metrics_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("serve/requests".into(), 42), ("serve/shed".into(), 1)],
            gauges: vec![("serve/queue_depth".into(), 3.0)],
            histograms: vec![HistSummary {
                name: "serve/batch_size".into(),
                count: 10,
                mean: 4.0,
                min: 1.0,
                max: 8.0,
                p50: 4.0,
                p90: 8.0,
                p99: 8.0,
            }],
        }
    }

    #[test]
    fn rendered_exposition_validates_and_is_deterministic() {
        let text = render(&sample_metrics_snapshot(), &sample_trace_snapshot());
        validate(&text).expect("rendered exposition must validate");
        assert_eq!(
            text,
            render(&sample_metrics_snapshot(), &sample_trace_snapshot())
        );
        assert!(text.contains("tfb_serve_requests_total 42"), "{text}");
        assert!(
            text.contains("tfb_request_phase_seconds_bucket{phase=\"parse\",le=\"0.001\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("tfb_slo_burn_rate{window=\"1m\"} 11.1"),
            "{text}"
        );
        assert!(
            text.contains("tfb_slow_request_seconds{trace_id=\"deadbeefdeadbeef\"} 0.08"),
            "{text}"
        );
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_exposition_is_valid() {
        let text = render(&MetricsSnapshot::default(), &TraceSnapshot::default());
        assert_eq!(text, "# EOF\n");
        validate(&text).expect("empty exposition must validate");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // Missing EOF.
        assert!(validate("# TYPE a counter\na_total 1\n").is_err());
        // Counter sample without the _total suffix.
        assert!(validate("# TYPE a counter\na 1\n# EOF\n").is_err());
        // Sample before its TYPE declaration.
        assert!(validate("a_total 1\n# TYPE a counter\n# EOF\n").is_err());
        // Interleaved families.
        assert!(validate("# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n# EOF\n").is_err());
        // Non-cumulative buckets.
        assert!(validate(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"0.1\"} 5\n",
            "h_bucket{le=\"+Inf\"} 3\n",
            "h_count 3\nh_sum 1.0\n# EOF\n"
        ))
        .is_err());
        // +Inf bucket disagrees with _count.
        assert!(validate(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"0.1\"} 2\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_count 9\nh_sum 1.0\n# EOF\n"
        ))
        .is_err());
        // Missing +Inf bucket.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_count 2\nh_sum 1.0\n# EOF\n"
        )
        .is_err());
        // Trailing timestamp token.
        assert!(validate("# TYPE a gauge\na 1 1234567\n# EOF\n").is_err());
        // Garbage after EOF.
        assert!(validate("# EOF\n# TYPE a gauge\n").is_err());
    }

    #[test]
    fn validator_accepts_well_formed_labelled_histograms() {
        let doc = concat!(
            "# HELP h a labelled histogram\n",
            "# TYPE h histogram\n",
            "h_bucket{phase=\"a\",le=\"0.1\"} 1\n",
            "h_bucket{phase=\"a\",le=\"+Inf\"} 4\n",
            "h_count{phase=\"a\"} 4\n",
            "h_sum{phase=\"a\"} 0.5\n",
            "h_bucket{phase=\"b\",le=\"0.1\"} 0\n",
            "h_bucket{phase=\"b\",le=\"+Inf\"} 2\n",
            "h_count{phase=\"b\"} 2\n",
            "h_sum{phase=\"b\"} 0.4\n",
            "# EOF\n"
        );
        validate(doc).expect("labelled histogram must validate");
    }

    #[test]
    fn family_names_are_sanitized() {
        assert_eq!(family_name("serve/batch_size"), "tfb_serve_batch_size");
        assert_eq!(family_name("a-b.c"), "tfb_a_b_c");
    }
}

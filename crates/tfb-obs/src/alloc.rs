//! A counting global allocator (feature `alloc-track`): wraps the system
//! allocator and keeps lock-free totals of allocation calls, bytes
//! requested, live bytes and the live-bytes high-water mark.
//!
//! The crate cannot install it for you — a `#[global_allocator]` must
//! live in the final binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tfb_obs::alloc::CountingAllocator = tfb_obs::alloc::CountingAllocator;
//! ```
//!
//! When no binary installs it, [`stats`] simply reports zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Number of allocation calls (alloc + alloc_zeroed + realloc).
    pub calls: u64,
    /// Total bytes ever requested.
    pub bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_live_bytes: u64,
}

/// Current totals since process start (zeros when the allocator is not
/// installed as `#[global_allocator]`).
pub fn stats() -> AllocStats {
    AllocStats {
        calls: CALLS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE.load(Ordering::Relaxed),
    }
}

/// Difference between two snapshots (for bracketing one configuration).
pub fn delta(before: AllocStats, after: AllocStats) -> AllocStats {
    AllocStats {
        calls: after.calls.saturating_sub(before.calls),
        bytes: after.bytes.saturating_sub(before.bytes),
        live_bytes: after.live_bytes,
        peak_live_bytes: after.peak_live_bytes,
    }
}

fn on_alloc(size: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    let mut peak = PEAK_LIVE.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_LIVE.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: u64) {
    // Saturating: a binary may install the allocator after some frees'
    // matching allocs were already counted by a previous allocator. In
    // practice installation happens before main, so this never triggers.
    let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(size))
    });
}

/// The counting allocator: forwards to [`System`], counts on the side
/// with relaxed atomics only (it must never allocate itself).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

//! The live recorder: global run state, the per-thread span stack, metric
//! registries and the JSONL event sink. Compiled only with the `record`
//! feature; `noop.rs` mirrors the API as zero-sized stubs otherwise.
//!
//! Concurrency model: one process-wide run at a time. `ENABLED` is the
//! fast gate every probe checks first (one relaxed load). Span closes and
//! sink writes funnel through the `STATE` mutex; counters and gauges are
//! lock-free atomics registered on first touch; histograms keep exact
//! samples behind their own mutex. Aggregation is order-independent
//! (u64 sums and min/max), and the manifest sorts every table, so runs
//! are deterministic regardless of thread interleaving.

use crate::manifest::{json_num, json_str, percentile, HistSummary, Manifest, PhaseRow};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Display;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<RunState>> = Mutex::new(None);
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());
static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
}

/// Whether a run is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-(path, dataset, method) running aggregate.
#[derive(Debug)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

struct RunState {
    start: Instant,
    aggregates: HashMap<(String, String, String), Agg>,
    sink: Option<BufWriter<File>>,
    events_path: Option<PathBuf>,
    seq: u64,
}

/// One entry of the per-thread span stack (what children inherit).
struct Frame {
    path: String,
    dataset: Option<String>,
    method: Option<String>,
}

/// How to record a run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// When set, every span close is appended to this JSONL event log.
    pub events_path: Option<PathBuf>,
}

/// Arms recording: resets all metric state, optionally opens the JSONL
/// event sink, and enables every probe in the process.
pub fn start_run(opts: RunOptions) -> std::io::Result<()> {
    let mut sink = match &opts.events_path {
        Some(path) => {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            Some(BufWriter::new(File::create(path)?))
        }
        None => None,
    };
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        c.value.store(0, Ordering::Relaxed);
        c.dirty.store(false, Ordering::Relaxed);
    }
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        g.bits.store(0, Ordering::Relaxed);
        g.dirty.store(false, Ordering::Relaxed);
    }
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        h.samples.lock().expect("histogram poisoned").clear();
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if let Some(w) = sink.as_mut() {
        let _ = writeln!(w, "{{\"ev\":\"run_start\",\"cores\":{cores}}}");
    }
    *STATE.lock().expect("obs state poisoned") = Some(RunState {
        start: Instant::now(),
        aggregates: HashMap::new(),
        sink,
        events_path: opts.events_path.clone(),
        seq: 0,
    });
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Disarms recording and returns the run's [`Manifest`] (with the given
/// provenance `meta` attached), or `None` when no run was active.
pub fn finish_run(meta: &[(&str, String)]) -> Option<Manifest> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut state = STATE.lock().expect("obs state poisoned").take()?;
    let wall_ns = state.start.elapsed().as_nanos() as u64;
    if let Some(w) = state.sink.as_mut() {
        let _ = writeln!(w, "{{\"ev\":\"run_end\",\"wall_ns\":{wall_ns}}}");
        let _ = w.flush();
    }
    let mut phases: Vec<PhaseRow> = state
        .aggregates
        .into_iter()
        .map(|((path, dataset, method), a)| PhaseRow {
            path,
            dataset,
            method,
            count: a.count,
            total_ns: a.total_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
        })
        .collect();
    phases.sort_by(|a, b| (&a.path, &a.dataset, &a.method).cmp(&(&b.path, &b.dataset, &b.method)));
    // Counters/gauges/histograms: only entries touched during this run;
    // same-name entries from different call sites merge.
    let mut counters: HashMap<&'static str, u64> = HashMap::new();
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        if c.dirty.load(Ordering::Relaxed) {
            *counters.entry(c.name).or_insert(0) += c.value.load(Ordering::Relaxed);
        }
    }
    let mut counters: Vec<(String, u64)> = counters
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort();
    let mut gauges: HashMap<&'static str, f64> = HashMap::new();
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        if g.dirty.load(Ordering::Relaxed) {
            gauges.insert(g.name, g.get());
        }
    }
    let mut gauges: Vec<(String, f64)> = gauges
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut hist_samples: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        let samples = h.samples.lock().expect("histogram poisoned");
        if !samples.is_empty() {
            hist_samples
                .entry(h.name)
                .or_default()
                .extend_from_slice(&samples);
        }
    }
    let mut histograms: Vec<HistSummary> = hist_samples
        .into_iter()
        .map(|(name, mut xs)| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            HistSummary {
                name: name.to_string(),
                count: xs.len(),
                mean: xs.iter().sum::<f64>() / xs.len() as f64,
                min: xs[0],
                max: xs[xs.len() - 1],
                p50: percentile(&xs, 50.0),
                p90: percentile(&xs, 90.0),
                p99: percentile(&xs, 99.0),
            }
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut meta: Vec<(String, String)> = meta
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    meta.sort();
    Some(Manifest {
        meta,
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        wall_ns,
        peak_rss_bytes: crate::peak_rss_bytes(),
        events_path: state.events_path.as_ref().map(|p| p.display().to_string()),
        phases,
        counters,
        gauges,
        histograms,
    })
}

/// An RAII span guard: created by [`Span::enter`] (or the
/// [`span!`](crate::span!) macro), records elapsed wall time on drop.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    active: Option<SpanData>,
}

struct SpanData {
    idx: usize,
    start: Instant,
    str_fields: Vec<(&'static str, String)>,
    num_fields: Vec<(&'static str, f64)>,
}

impl Span {
    /// Opens a span. Nesting and the `dataset`/`method` context are
    /// tracked per thread; outside a run this is a no-op.
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        let idx = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (path, dataset, method) = match stack.last() {
                Some(parent) => (
                    format!("{}.{}", parent.path, name),
                    parent.dataset.clone(),
                    parent.method.clone(),
                ),
                None => (name.to_string(), None, None),
            };
            stack.push(Frame {
                path,
                dataset,
                method,
            });
            stack.len() - 1
        });
        Span {
            active: Some(SpanData {
                idx,
                start: Instant::now(),
                str_fields: Vec::new(),
                num_fields: Vec::new(),
            }),
        }
    }

    /// Attaches a field. `dataset` and `method` are special: they key the
    /// manifest's per-cell breakdown and are inherited by nested spans;
    /// everything else lands in the event record only.
    pub fn with(mut self, key: &'static str, value: &dyn Display) -> Span {
        if let Some(data) = self.active.as_mut() {
            let value = value.to_string();
            match key {
                "dataset" | "method" => STACK.with(|stack| {
                    if let Some(frame) = stack.borrow_mut().get_mut(data.idx) {
                        if key == "dataset" {
                            frame.dataset = Some(value);
                        } else {
                            frame.method = Some(value);
                        }
                    }
                }),
                _ => data.str_fields.push((key, value)),
            }
        }
        self
    }

    /// Attaches a numeric field (per-epoch loss, FLOP estimates, …) to the
    /// span's event record.
    pub fn record(mut self, key: &'static str, value: f64) -> Span {
        if let Some(data) = self.active.as_mut() {
            data.num_fields.push((key, value));
        }
        self
    }

    /// Explicitly closes the span (dropping it does the same).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.active.take() else {
            return;
        };
        let ns = data.start.elapsed().as_nanos() as u64;
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if data.idx < stack.len() {
                let frame = stack.swap_remove(data.idx);
                // Mis-nested drops (a parent outliving its guard order)
                // still truncate to this span's depth.
                stack.truncate(data.idx);
                Some(frame)
            } else {
                None
            }
        });
        let Some(frame) = frame else { return };
        let thread = THREAD_ID.with(|t| *t);
        record_closed_span(
            frame.path,
            frame.dataset.unwrap_or_default(),
            frame.method.unwrap_or_default(),
            &data.str_fields,
            &data.num_fields,
            ns,
            data.idx,
            thread,
        );
    }
}

/// Aggregates one closed span and appends its event to the sink.
#[allow(clippy::too_many_arguments)]
fn record_closed_span(
    path: String,
    dataset: String,
    method: String,
    str_fields: &[(&'static str, String)],
    num_fields: &[(&'static str, f64)],
    ns: u64,
    depth: usize,
    thread: u64,
) {
    let mut guard = STATE.lock().expect("obs state poisoned");
    let Some(state) = guard.as_mut() else {
        return;
    };
    let entry = state
        .aggregates
        .entry((path.clone(), dataset.clone(), method.clone()))
        .or_insert(Agg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
    entry.count += 1;
    entry.total_ns += ns;
    entry.min_ns = entry.min_ns.min(ns);
    entry.max_ns = entry.max_ns.max(ns);
    if state.sink.is_some() {
        state.seq += 1;
        let seq = state.seq;
        let t_ns = state.start.elapsed().as_nanos() as u64;
        let mut line = String::with_capacity(128);
        line.push_str(&format!(
            "{{\"ev\":\"span\",\"seq\":{seq},\"t_ns\":{t_ns},\"thread\":{thread},\"depth\":{depth},\"path\":"
        ));
        json_str(&mut line, &path);
        line.push_str(",\"dataset\":");
        json_str(&mut line, &dataset);
        line.push_str(",\"method\":");
        json_str(&mut line, &method);
        line.push_str(&format!(",\"ns\":{ns}"));
        if !str_fields.is_empty() || !num_fields.is_empty() {
            line.push_str(",\"fields\":{");
            let mut first = true;
            for (k, v) in str_fields {
                if !first {
                    line.push(',');
                }
                first = false;
                json_str(&mut line, k);
                line.push(':');
                json_str(&mut line, v);
            }
            for (k, v) in num_fields {
                if !first {
                    line.push(',');
                }
                first = false;
                json_str(&mut line, k);
                line.push(':');
                json_num(&mut line, *v);
            }
            line.push('}');
        }
        line.push('}');
        if let Some(w) = state.sink.as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// A monotonic counter. Declare one per call site with
/// [`counter!`](crate::counter!); same-name counters merge in the
/// manifest.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    dirty: AtomicBool,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed counter (const: usable in statics).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS
                .lock()
                .expect("counter registry poisoned")
                .push(self);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge. Declare one per call site with
/// [`gauge!`](crate::gauge!).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    dirty: AtomicBool,
    registered: AtomicBool,
}

impl Gauge {
    /// A zeroed gauge (const: usable in statics).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// Stores `v`. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            GAUGES.lock().expect("gauge registry poisoned").push(self);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A sample-exact histogram (percentiles computed at flush). Declare one
/// per call site with [`histogram!`](crate::histogram!).
pub struct Histogram {
    name: &'static str,
    samples: Mutex<Vec<f64>>,
    registered: AtomicBool,
}

impl Histogram {
    /// An empty histogram (const: usable in statics).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            samples: Mutex::new(Vec::new()),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one sample. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn record(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.samples.lock().expect("histogram poisoned").push(v);
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS
                .lock()
                .expect("histogram registry poisoned")
                .push(self);
        }
    }
}

/// Test-only hooks (aggregation with injected durations, so determinism
/// tests do not depend on wall clocks).
#[doc(hidden)]
pub mod test_support {
    /// Records a synthetic closed span with an exact duration.
    pub fn record_span_ns(path: &str, dataset: &str, method: &str, ns: u64) {
        if !super::enabled() {
            return;
        }
        super::record_closed_span(
            path.to_string(),
            dataset.to_string(),
            method.to_string(),
            &[],
            &[],
            ns,
            0,
            0,
        );
    }
}

//! The live recorder: global run state, the per-thread span stack, metric
//! registries and the JSONL event sink. Compiled only with the `record`
//! feature; `noop.rs` mirrors the API as zero-sized stubs otherwise.
//!
//! Concurrency model: one process-wide run at a time. `ENABLED` is the
//! fast gate every probe checks first (one relaxed load). Span closes and
//! sink writes funnel through the `STATE` mutex; counters and gauges are
//! lock-free atomics registered on first touch; histograms keep a bounded
//! reservoir behind their own mutex (count/mean/min/max stay exact at any
//! volume; percentiles are computed from the kept samples and are exact
//! until the cap is reached). Aggregation is order-independent (u64 sums
//! and min/max), and the manifest sorts every table, so runs are
//! deterministic regardless of thread interleaving.

use crate::manifest::{
    json_num, json_str, percentile, HealthKind, HealthSummary, HistSummary, Manifest, MetricRow,
    MetricsSnapshot, PhaseRow,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Display;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<RunState>> = Mutex::new(None);
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());
static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);
/// Per-cell accuracy metrics reported by the pipeline, keyed by
/// (dataset, method, horizon, metric label); last write wins.
#[allow(clippy::type_complexity)]
static METRICS: Mutex<Option<HashMap<(String, String, usize, String), f64>>> = Mutex::new(None);
/// Health events: (kind, dataset, method) triples, in arrival order.
static HEALTH_EVENTS: Mutex<Vec<(HealthKind, String, String)>> = Mutex::new(Vec::new());
/// Per-method gradient-norm reservoirs.
static GRAD_NORMS: Mutex<Option<HashMap<String, Reservoir>>> = Mutex::new(None);

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
}

/// Whether a run is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-(path, dataset, method) running aggregate.
#[derive(Debug)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

struct RunState {
    start: Instant,
    aggregates: HashMap<(String, String, String), Agg>,
    sink: Option<BufWriter<File>>,
    events_path: Option<PathBuf>,
    seq: u64,
}

/// One entry of the per-thread span stack (what children inherit).
struct Frame {
    path: String,
    dataset: Option<String>,
    method: Option<String>,
}

/// How to record a run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// When set, every span close is appended to this JSONL event log.
    pub events_path: Option<PathBuf>,
}

/// Arms recording: resets all metric state, optionally opens the JSONL
/// event sink, and enables every probe in the process.
pub fn start_run(opts: RunOptions) -> std::io::Result<()> {
    let mut sink = match &opts.events_path {
        Some(path) => {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            Some(BufWriter::new(File::create(path)?))
        }
        None => None,
    };
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        c.value.store(0, Ordering::Relaxed);
        c.dirty.store(false, Ordering::Relaxed);
    }
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        g.bits.store(0, Ordering::Relaxed);
        g.dirty.store(false, Ordering::Relaxed);
    }
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        h.samples.lock().expect("histogram poisoned").reset();
    }
    *METRICS.lock().expect("metric registry poisoned") = Some(HashMap::new());
    HEALTH_EVENTS
        .lock()
        .expect("health registry poisoned")
        .clear();
    *GRAD_NORMS.lock().expect("grad-norm registry poisoned") = Some(HashMap::new());
    crate::trace::reset_state();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let line = format!("{{\"ev\":\"run_start\",\"cores\":{cores}}}");
    if let Some(w) = sink.as_mut() {
        let _ = writeln!(w, "{line}");
    }
    crate::flight::offer(&line);
    *STATE.lock().expect("obs state poisoned") = Some(RunState {
        start: Instant::now(),
        aggregates: HashMap::new(),
        sink,
        events_path: opts.events_path.clone(),
        seq: 0,
    });
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Disarms recording and returns the run's [`Manifest`] (with the given
/// provenance `meta` attached), or `None` when no run was active.
pub fn finish_run(meta: &[(&str, String)]) -> Option<Manifest> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut state = STATE.lock().expect("obs state poisoned").take()?;
    let wall_ns = state.start.elapsed().as_nanos() as u64;
    let line = format!("{{\"ev\":\"run_end\",\"wall_ns\":{wall_ns}}}");
    if let Some(w) = state.sink.as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
    crate::flight::offer(&line);
    let mut phases: Vec<PhaseRow> = state
        .aggregates
        .into_iter()
        .map(|((path, dataset, method), a)| PhaseRow {
            path,
            dataset,
            method,
            count: a.count,
            total_ns: a.total_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
        })
        .collect();
    phases.sort_by(|a, b| (&a.path, &a.dataset, &a.method).cmp(&(&b.path, &b.dataset, &b.method)));
    // Counters/gauges/histograms: only entries touched during this run;
    // same-name entries from different call sites merge.
    let mut counters: HashMap<&'static str, u64> = HashMap::new();
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        if c.dirty.load(Ordering::Relaxed) {
            *counters.entry(c.name).or_insert(0) += c.value.load(Ordering::Relaxed);
        }
    }
    let mut counters: Vec<(String, u64)> = counters
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort();
    let mut gauges: HashMap<&'static str, f64> = HashMap::new();
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        if g.dirty.load(Ordering::Relaxed) {
            gauges.insert(g.name, g.get());
        }
    }
    let mut gauges: Vec<(String, f64)> = gauges
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    // Same-name histograms from different call sites merge: counts, sums
    // and min/max are exact; percentiles pool the kept samples.
    let mut hist_pool: HashMap<&'static str, Reservoir> = HashMap::new();
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        let r = h.samples.lock().expect("histogram poisoned");
        if r.seen > 0 {
            hist_pool
                .entry(h.name)
                .or_insert_with(Reservoir::new)
                .merge(&r);
        }
    }
    let mut histograms: Vec<HistSummary> = hist_pool
        .into_iter()
        .map(|(name, r)| r.summary(name.to_string()))
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let metric_map = METRICS
        .lock()
        .expect("metric registry poisoned")
        .take()
        .unwrap_or_default();
    let mut metrics: Vec<MetricRow> = metric_map
        .into_iter()
        .map(|((dataset, method, horizon, name), value)| MetricRow {
            dataset,
            method,
            horizon,
            name,
            value,
        })
        .collect();
    metrics.sort_by(|a, b| {
        (&a.dataset, &a.method, a.horizon, &a.name)
            .cmp(&(&b.dataset, &b.method, b.horizon, &b.name))
    });
    let mut health = HealthSummary::default();
    {
        let events = HEALTH_EVENTS.lock().expect("health registry poisoned");
        for (kind, dataset, method) in events.iter() {
            let cell = format!("{dataset}/{method}");
            match kind {
                HealthKind::Nan => health.nan_cells.push(cell.clone()),
                HealthKind::Diverged => health.diverged_cells.push(cell.clone()),
            }
            health.aborted_cells.push(cell);
        }
    }
    for cells in [
        &mut health.nan_cells,
        &mut health.diverged_cells,
        &mut health.aborted_cells,
    ] {
        cells.sort();
        cells.dedup();
    }
    let grad_map = GRAD_NORMS
        .lock()
        .expect("grad-norm registry poisoned")
        .take()
        .unwrap_or_default();
    let mut grad_norms: Vec<(String, HistSummary)> = grad_map
        .into_iter()
        .map(|(method, r)| {
            let summary = r.summary(method.clone());
            (method, summary)
        })
        .collect();
    grad_norms.sort_by(|a, b| a.0.cmp(&b.0));
    health.grad_norms = grad_norms;
    let mut meta: Vec<(String, String)> = meta
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    meta.sort();
    // SLO + exemplar sections appear only for runs that traced requests
    // (serve sessions); benchmark manifests stay byte-identical.
    let trace_snap = crate::trace::snapshot();
    let slo = trace_snap.slo.filter(|s| s.total > 0);
    let exemplars = if slo.is_some() {
        trace_snap.exemplars
    } else {
        Vec::new()
    };
    Some(Manifest {
        meta,
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        wall_ns,
        peak_rss_bytes: crate::peak_rss_bytes(),
        events_path: state.events_path.as_ref().map(|p| p.display().to_string()),
        phases,
        counters,
        gauges,
        histograms,
        metrics,
        measurements: Vec::new(),
        slo,
        exemplars,
        flight: crate::flight::manifest_summary(),
        health,
    })
}

/// Appends one `{"ev":"trace",…}` line — a finished request trace with
/// its full phase breakdown — to the JSONL sink when one is open, and to
/// the flight recorder's ring when armed.
pub(crate) fn emit_trace_event(
    id: u64,
    status: crate::trace::TraceStatus,
    total_ns: u64,
    phase_ns: &[u64; crate::trace::PHASE_COUNT],
    batch_id: Option<u64>,
    batch_size: u64,
) {
    let thread = THREAD_ID.with(|t| *t);
    let mut guard = STATE.lock().expect("obs state poisoned");
    let Some(state) = guard.as_mut() else {
        return;
    };
    if state.sink.is_none() && !crate::flight::armed() {
        return;
    }
    state.seq += 1;
    let seq = state.seq;
    let t_ns = state.start.elapsed().as_nanos() as u64;
    let mut line = String::with_capacity(192);
    line.push_str(&format!(
        "{{\"ev\":\"trace\",\"seq\":{seq},\"t_ns\":{t_ns},\"thread\":{thread},\"trace_id\":\"{id:016x}\",\"status\":\"{}\",\"total_ns\":{total_ns}",
        status.label()
    ));
    match batch_id {
        Some(b) => line.push_str(&format!(",\"batch_id\":{b},\"batch_size\":{batch_size}")),
        None => line.push_str(",\"batch_id\":null,\"batch_size\":0"),
    }
    line.push_str(",\"phases\":{");
    let mut first = true;
    for p in crate::trace::Phase::ALL {
        let ns = phase_ns[p.index()];
        if ns == 0 {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        line.push_str(&format!("\"{}\":{ns}", p.label()));
    }
    line.push_str("}}");
    if let Some(w) = state.sink.as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
    crate::flight::offer(&line);
}

/// Records one work-steal: shard `to` stole `moved` queued requests from
/// shard `from`. Appends a `{"ev":"steal",…}` line so the trace exporter
/// can draw cross-shard flow arrows (the steal *count* is a counter; this
/// is the per-event record).
pub fn steal_event(from: usize, to: usize, moved: usize) {
    if !enabled() {
        return;
    }
    let thread = THREAD_ID.with(|t| *t);
    let mut guard = STATE.lock().expect("obs state poisoned");
    let Some(state) = guard.as_mut() else {
        return;
    };
    if state.sink.is_none() && !crate::flight::armed() {
        return;
    }
    state.seq += 1;
    let seq = state.seq;
    let t_ns = state.start.elapsed().as_nanos() as u64;
    let line = format!(
        "{{\"ev\":\"steal\",\"seq\":{seq},\"t_ns\":{t_ns},\"thread\":{thread},\"from\":{from},\"to\":{to},\"moved\":{moved}}}"
    );
    if let Some(w) = state.sink.as_mut() {
        let _ = writeln!(w, "{line}");
    }
    crate::flight::offer(&line);
}

/// Appends the profiler's flushed sample rows as `{"ev":"psample",…}`
/// lines: one per (thread name, collapsed stack), carrying the sample
/// count since the previous flush. Called by the sampler thread.
pub(crate) fn emit_profile_samples(rows: &[(String, String, u64)]) {
    let thread = THREAD_ID.with(|t| *t);
    let mut guard = STATE.lock().expect("obs state poisoned");
    let Some(state) = guard.as_mut() else {
        return;
    };
    if state.sink.is_none() && !crate::flight::armed() {
        return;
    }
    let t_ns = state.start.elapsed().as_nanos() as u64;
    for (name, stack, count) in rows {
        state.seq += 1;
        let seq = state.seq;
        let mut line = String::with_capacity(128);
        line.push_str(&format!(
            "{{\"ev\":\"psample\",\"seq\":{seq},\"t_ns\":{t_ns},\"thread\":{thread},\"name\":"
        ));
        json_str(&mut line, name);
        line.push_str(",\"stack\":");
        json_str(&mut line, stack);
        line.push_str(&format!(",\"count\":{count}}}"));
        if let Some(w) = state.sink.as_mut() {
            let _ = writeln!(w, "{line}");
        }
        crate::flight::offer(&line);
    }
    if let Some(w) = state.sink.as_mut() {
        let _ = w.flush();
    }
}

/// A point-in-time [`MetricsSnapshot`] of the live registries, without
/// disarming the run. Only entries touched since `start_run` appear;
/// same-name entries from different call sites merge; every table is
/// sorted by name. A long-lived serving process calls this from its
/// `/metrics` endpoint while requests keep flowing.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut counters: HashMap<&'static str, u64> = HashMap::new();
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        if c.dirty.load(Ordering::Relaxed) {
            *counters.entry(c.name).or_insert(0) += c.value.load(Ordering::Relaxed);
        }
    }
    let mut counters: Vec<(String, u64)> = counters
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort();
    let mut gauges: HashMap<&'static str, f64> = HashMap::new();
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        if g.dirty.load(Ordering::Relaxed) {
            gauges.insert(g.name, g.get());
        }
    }
    let mut gauges: Vec<(String, f64)> = gauges
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut hist_pool: HashMap<&'static str, Reservoir> = HashMap::new();
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        let r = h.samples.lock().expect("histogram poisoned");
        if r.seen > 0 {
            hist_pool
                .entry(h.name)
                .or_insert_with(Reservoir::new)
                .merge(&r);
        }
    }
    let mut histograms: Vec<HistSummary> = hist_pool
        .into_iter()
        .map(|(name, r)| r.summary(name.to_string()))
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Reports one per-cell accuracy metric (MAE, MSE, …) into the manifest's
/// `metrics` table. Last write for a given (dataset, method, horizon,
/// name) key wins. Outside a run: one relaxed load, nothing else.
pub fn report_metric(dataset: &str, method: &str, horizon: usize, name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(map) = METRICS.lock().expect("metric registry poisoned").as_mut() {
        map.insert(
            (
                dataset.to_string(),
                method.to_string(),
                horizon,
                name.to_string(),
            ),
            value,
        );
    }
}

/// Records a numerical-health event (NaN loss, divergence abort, …) for
/// the current cell. The dataset/method are taken from the innermost
/// enclosing span that carries them, so call this from the thread the
/// cell's spans run on. Also appends a structured `health` event to the
/// JSONL sink when one is open.
pub fn health_event(kind: HealthKind, detail: &str) {
    if !enabled() {
        return;
    }
    let (dataset, method) = current_cell();
    HEALTH_EVENTS
        .lock()
        .expect("health registry poisoned")
        .push((kind, dataset.clone(), method.clone()));
    let mut guard = STATE.lock().expect("obs state poisoned");
    if let Some(state) = guard.as_mut() {
        if state.sink.is_some() || crate::flight::armed() {
            state.seq += 1;
            let seq = state.seq;
            let t_ns = state.start.elapsed().as_nanos() as u64;
            let mut line = String::with_capacity(96);
            line.push_str(&format!(
                "{{\"ev\":\"health\",\"seq\":{seq},\"t_ns\":{t_ns},\"kind\":\"{}\",\"dataset\":",
                kind.label()
            ));
            json_str(&mut line, &dataset);
            line.push_str(",\"method\":");
            json_str(&mut line, &method);
            line.push_str(",\"detail\":");
            json_str(&mut line, detail);
            line.push('}');
            if let Some(w) = state.sink.as_mut() {
                let _ = writeln!(w, "{line}");
            }
            crate::flight::offer(&line);
        }
    }
    // A numerical-health sentinel is a flight trigger: dump the recent
    // past (rate-limited) after releasing the recorder's state lock.
    drop(guard);
    crate::flight::dump(&format!("health:{}", kind.label()));
}

/// Records one gradient-norm sample for the current cell's method (from
/// the innermost enclosing span carrying one; "" when none does). Flushed
/// as per-method histograms under the manifest's `health.grad_norms`.
pub fn record_grad_norm(value: f64) {
    if !enabled() {
        return;
    }
    let (_, method) = current_cell();
    if let Some(map) = GRAD_NORMS
        .lock()
        .expect("grad-norm registry poisoned")
        .as_mut()
    {
        map.entry(method)
            .or_insert_with(Reservoir::new)
            .offer(value);
    }
}

/// The (dataset, method) context of the innermost span on this thread's
/// stack that carries them ("" when nothing does).
fn current_cell() -> (String, String) {
    STACK.with(|stack| {
        let stack = stack.borrow();
        let dataset = stack
            .iter()
            .rev()
            .find_map(|f| f.dataset.clone())
            .unwrap_or_default();
        let method = stack
            .iter()
            .rev()
            .find_map(|f| f.method.clone())
            .unwrap_or_default();
        (dataset, method)
    })
}

/// An RAII span guard: created by [`Span::enter`] (or the
/// [`span!`](crate::span!) macro), records elapsed wall time on drop.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    active: Option<SpanData>,
}

struct SpanData {
    idx: usize,
    start: Instant,
    str_fields: Vec<(&'static str, String)>,
    num_fields: Vec<(&'static str, f64)>,
}

impl Span {
    /// Opens a span. Nesting and the `dataset`/`method` context are
    /// tracked per thread; outside a run this is a no-op.
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        let idx = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (path, dataset, method) = match stack.last() {
                Some(parent) => (
                    format!("{}.{}", parent.path, name),
                    parent.dataset.clone(),
                    parent.method.clone(),
                ),
                None => (name.to_string(), None, None),
            };
            stack.push(Frame {
                path,
                dataset,
                method,
            });
            stack.len() - 1
        });
        crate::flight::profiler::frame_push(name);
        Span {
            active: Some(SpanData {
                idx,
                start: Instant::now(),
                str_fields: Vec::new(),
                num_fields: Vec::new(),
            }),
        }
    }

    /// Attaches a field. `dataset` and `method` are special: they key the
    /// manifest's per-cell breakdown and are inherited by nested spans;
    /// everything else lands in the event record only.
    pub fn with(mut self, key: &'static str, value: &dyn Display) -> Span {
        if let Some(data) = self.active.as_mut() {
            let value = value.to_string();
            match key {
                "dataset" | "method" => STACK.with(|stack| {
                    if let Some(frame) = stack.borrow_mut().get_mut(data.idx) {
                        if key == "dataset" {
                            frame.dataset = Some(value);
                        } else {
                            frame.method = Some(value);
                        }
                    }
                }),
                _ => data.str_fields.push((key, value)),
            }
        }
        self
    }

    /// Attaches a numeric field (per-epoch loss, FLOP estimates, …) to the
    /// span's event record.
    pub fn record(mut self, key: &'static str, value: f64) -> Span {
        if let Some(data) = self.active.as_mut() {
            data.num_fields.push((key, value));
        }
        self
    }

    /// Explicitly closes the span (dropping it does the same).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.active.take() else {
            return;
        };
        crate::flight::profiler::frame_pop();
        let ns = data.start.elapsed().as_nanos() as u64;
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if data.idx < stack.len() {
                let frame = stack.swap_remove(data.idx);
                // Mis-nested drops (a parent outliving its guard order)
                // still truncate to this span's depth.
                stack.truncate(data.idx);
                Some(frame)
            } else {
                None
            }
        });
        let Some(frame) = frame else { return };
        let thread = THREAD_ID.with(|t| *t);
        record_closed_span(
            frame.path,
            frame.dataset.unwrap_or_default(),
            frame.method.unwrap_or_default(),
            &data.str_fields,
            &data.num_fields,
            ns,
            data.idx,
            thread,
        );
    }
}

/// Aggregates one closed span and appends its event to the sink.
#[allow(clippy::too_many_arguments)]
fn record_closed_span(
    path: String,
    dataset: String,
    method: String,
    str_fields: &[(&'static str, String)],
    num_fields: &[(&'static str, f64)],
    ns: u64,
    depth: usize,
    thread: u64,
) {
    let mut guard = STATE.lock().expect("obs state poisoned");
    let Some(state) = guard.as_mut() else {
        return;
    };
    let entry = state
        .aggregates
        .entry((path.clone(), dataset.clone(), method.clone()))
        .or_insert(Agg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
    entry.count += 1;
    entry.total_ns += ns;
    entry.min_ns = entry.min_ns.min(ns);
    entry.max_ns = entry.max_ns.max(ns);
    if state.sink.is_some() || crate::flight::armed() {
        state.seq += 1;
        let seq = state.seq;
        let t_ns = state.start.elapsed().as_nanos() as u64;
        let mut line = String::with_capacity(128);
        line.push_str(&format!(
            "{{\"ev\":\"span\",\"seq\":{seq},\"t_ns\":{t_ns},\"thread\":{thread},\"depth\":{depth},\"path\":"
        ));
        json_str(&mut line, &path);
        line.push_str(",\"dataset\":");
        json_str(&mut line, &dataset);
        line.push_str(",\"method\":");
        json_str(&mut line, &method);
        line.push_str(&format!(",\"ns\":{ns}"));
        if !str_fields.is_empty() || !num_fields.is_empty() {
            line.push_str(",\"fields\":{");
            let mut first = true;
            for (k, v) in str_fields {
                if !first {
                    line.push(',');
                }
                first = false;
                json_str(&mut line, k);
                line.push(':');
                json_str(&mut line, v);
            }
            for (k, v) in num_fields {
                if !first {
                    line.push(',');
                }
                first = false;
                json_str(&mut line, k);
                line.push(':');
                json_num(&mut line, *v);
            }
            line.push('}');
        }
        line.push('}');
        if let Some(w) = state.sink.as_mut() {
            let _ = writeln!(w, "{line}");
        }
        crate::flight::offer(&line);
    }
}

/// A monotonic counter. Declare one per call site with
/// [`counter!`](crate::counter!); same-name counters merge in the
/// manifest.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    dirty: AtomicBool,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed counter (const: usable in statics).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS
                .lock()
                .expect("counter registry poisoned")
                .push(self);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge. Declare one per call site with
/// [`gauge!`](crate::gauge!).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    dirty: AtomicBool,
    registered: AtomicBool,
}

impl Gauge {
    /// A zeroed gauge (const: usable in statics).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0),
            dirty: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// Stores `v`. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            GAUGES.lock().expect("gauge registry poisoned").push(self);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default reservoir capacity: the kept-sample bound per histogram.
pub const RESERVOIR_CAP: usize = 4096;

/// A bounded sample reservoir with deterministic, seed-free decimation.
///
/// Keeps every `stride`-th offered sample; when the kept set reaches
/// [`RESERVOIR_CAP`], it drops every other kept sample (even indices
/// survive) and doubles the stride. `seen`, `sum`, `min` and `max` are
/// always exact — only percentiles come from the kept subset, and those
/// stay exact until the cap is first reached. No RNG: the kept set is a
/// pure function of the offer order, so single-threaded runs are
/// bit-reproducible.
#[derive(Debug, Clone)]
pub(crate) struct Reservoir {
    stride: u64,
    seen: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// An empty reservoir (const: usable in statics).
    pub(crate) const fn new() -> Reservoir {
        Reservoir {
            stride: 1,
            seen: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
        }
    }

    /// Back to the empty state (capacity retained).
    pub(crate) fn reset(&mut self) {
        self.stride = 1;
        self.seen = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.samples.clear();
    }

    /// Offers one sample: exact stats always update; the sample is kept
    /// only when it falls on the current stride.
    pub(crate) fn offer(&mut self, v: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() >= RESERVOIR_CAP {
                // Decimate: keep even indices, double the stride.
                let mut i = 0;
                self.samples.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push(v);
            }
        }
        self.seen += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another reservoir in: exact stats combine exactly; kept
    /// samples pool (percentiles over the union of both subsets).
    pub(crate) fn merge(&mut self, other: &Reservoir) {
        self.seen += other.seen;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples.extend_from_slice(&other.samples);
        self.stride = self.stride.max(other.stride);
    }

    /// Flushes to a [`HistSummary`]: count/mean/min/max exact, percentiles
    /// from the kept samples.
    pub(crate) fn summary(mut self, name: String) -> HistSummary {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        HistSummary {
            name,
            count: self.seen as usize,
            mean: if self.seen > 0 {
                self.sum / self.seen as f64
            } else {
                f64::NAN
            },
            min: self.min,
            max: self.max,
            p50: percentile(&self.samples, 50.0),
            p90: percentile(&self.samples, 90.0),
            p99: percentile(&self.samples, 99.0),
        }
    }
}

/// A bounded-memory histogram (percentiles computed at flush from a
/// capped [`Reservoir`]; count/mean/min/max stay exact). Declare one per
/// call site with [`histogram!`](crate::histogram!).
pub struct Histogram {
    name: &'static str,
    samples: Mutex<Reservoir>,
    registered: AtomicBool,
}

impl Histogram {
    /// An empty histogram (const: usable in statics).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            samples: Mutex::new(Reservoir::new()),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one sample. Outside a run: one relaxed load, nothing else.
    #[inline]
    pub fn record(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.samples.lock().expect("histogram poisoned").offer(v);
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS
                .lock()
                .expect("histogram registry poisoned")
                .push(self);
        }
    }
}

/// Test-only hooks (aggregation with injected durations, so determinism
/// tests do not depend on wall clocks).
#[doc(hidden)]
pub mod test_support {
    /// Records a synthetic closed span with an exact duration.
    pub fn record_span_ns(path: &str, dataset: &str, method: &str, ns: u64) {
        if !super::enabled() {
            return;
        }
        super::record_closed_span(
            path.to_string(),
            dataset.to_string(),
            method.to_string(),
            &[],
            &[],
            ns,
            0,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::percentile;

    #[test]
    fn reservoir_is_exact_below_cap() {
        let mut r = Reservoir::new();
        for i in 1..=100 {
            r.offer(i as f64);
        }
        assert_eq!(r.samples.len(), 100);
        let s = r.summary("x".to_string());
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn reservoir_memory_is_bounded() {
        let mut r = Reservoir::new();
        for i in 0..1_000_000u64 {
            r.offer(i as f64);
        }
        assert!(
            r.samples.len() <= RESERVOIR_CAP,
            "kept {} > cap {}",
            r.samples.len(),
            RESERVOIR_CAP
        );
        assert_eq!(r.seen, 1_000_000);
    }

    #[test]
    fn reservoir_percentiles_within_one_percent_of_exact_on_1e6_samples() {
        // A skewed deterministic stream (quadratic ramp) so percentiles
        // differ meaningfully from the mean.
        let n = 1_000_000u64;
        let val = |i: u64| {
            let x = i as f64 / n as f64;
            x * x * 1000.0
        };
        let mut r = Reservoir::new();
        let mut exact: Vec<f64> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let v = val(i);
            r.offer(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = r.clone().summary("x".to_string());
        // Exact invariants survive decimation.
        assert_eq!(s.count, n as usize);
        assert_eq!(s.min, exact[0]);
        assert_eq!(s.max, exact[exact.len() - 1]);
        let exact_mean = exact.iter().sum::<f64>() / n as f64;
        assert!((s.mean - exact_mean).abs() / exact_mean < 1e-12);
        // Percentiles within 1% relative error of the exact values.
        for (q, got) in [(50.0, s.p50), (90.0, s.p90), (99.0, s.p99)] {
            let want = percentile(&exact, q);
            let rel = (got - want).abs() / want.abs().max(1e-12);
            assert!(rel < 0.01, "p{q}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn reservoir_decimation_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new();
            for i in 0..300_000u64 {
                r.offer((i % 977) as f64);
            }
            r
        };
        let (a, b) = (run(), run());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.stride, b.stride);
        assert_eq!(a.seen, b.seen);
    }

    #[test]
    fn reservoir_merge_combines_exact_stats() {
        let mut a = Reservoir::new();
        let mut b = Reservoir::new();
        for i in 1..=10 {
            a.offer(i as f64);
        }
        for i in 11..=20 {
            b.offer(i as f64);
        }
        a.merge(&b);
        let s = a.summary("x".to_string());
        assert_eq!(s.count, 20);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 20.0);
        assert!((s.mean - 10.5).abs() < 1e-12);
    }
}

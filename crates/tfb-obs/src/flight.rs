//! The black-box flight recorder: bounded in-memory capture of recent
//! events, anomaly-triggered postmortem bundles, and a wall-clock
//! sampling profiler.
//!
//! Production incidents are explained by what happened *just before*
//! them, and by then the JSONL sink (if one is even open) is megabytes
//! deep. The flight recorder keeps the recent past in memory instead:
//!
//! * **Rings** — every thread that emits events gets its own
//!   fixed-capacity ring of pre-rendered JSONL lines (overwrite-oldest).
//!   Writers only ever take their *own* ring's lock, so steady-state
//!   recording never contends; a coherent cross-thread snapshot is
//!   assembled by visiting rings one at a time and merging on the
//!   recorder's global sequence stamp.
//! * **Triggers** — an SLO burn-rate breach ([`crate::trace`]), a
//!   numerical-health sentinel, a queue/shed spike in the serving layer,
//!   or a panic anywhere in the process calls [`dump`], which writes a
//!   deterministic postmortem bundle (`postmortem.manifest.json` +
//!   `events.jsonl` + the worst-exemplar set + a config snapshot) into
//!   the content-addressed history root under `postmortems/`. Dumps are
//!   rate-limited: a sustained breach produces one bundle per cooldown,
//!   not thousands ([`dump_now`] bypasses the cooldown for panics).
//! * **Profiler** — [`profiler`] samples registered threads' current
//!   span stacks at a fixed rate (no unsafe backtraces: it reads the
//!   obs span stack the recorder already maintains), aggregates into
//!   flamegraph-ready collapsed lines, and streams `psample` events
//!   through the normal event path so Perfetto export picks them up.
//!
//! Compiled without the `record` feature everything here is an empty
//! `#[inline]` no-op, exactly like the rest of the crate.

use crate::manifest::FlightSummary;
use std::path::PathBuf;
use std::time::Duration;

/// How the flight recorder behaves once armed.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Per-thread ring capacity, in event lines.
    pub ring_capacity: usize,
    /// Minimum spacing between rate-limited dumps ([`dump_now`] ignores
    /// it).
    pub cooldown: Duration,
    /// Where postmortem bundles land (`<root>/postmortems/<id>/`);
    /// `None` uses `.tfb-history`.
    pub history_root: Option<PathBuf>,
    /// Caller-supplied context (model, shards, kernel, …) copied into
    /// every bundle's manifest.
    pub context: Vec<(String, String)>,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            ring_capacity: 1024,
            cooldown: Duration::from_secs(30),
            history_root: None,
            context: Vec::new(),
        }
    }
}

#[cfg(feature = "record")]
mod imp {
    use super::FlightConfig;
    use crate::manifest::{json_num, json_str, FlightSummary};
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static CONFIG: Mutex<Option<FlightConfig>> = Mutex::new(None);
    /// Registry of every thread's ring. Writers never touch this on the
    /// hot path — only on first use and at snapshot time.
    static RINGS: Mutex<Vec<Arc<RingHandle>>> = Mutex::new(Vec::new());
    /// Global order stamp: offers are already serialized by the
    /// recorder's `STATE` lock, so sorting on this reconstructs the sink
    /// order exactly.
    static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);
    static DUMPS: Mutex<DumpState> = Mutex::new(DumpState {
        last: None,
        dumps: 0,
        suppressed: 0,
        seq: 0,
        last_reason: String::new(),
    });
    static PANIC_HOOK: AtomicBool = AtomicBool::new(false);

    struct DumpState {
        last: Option<Instant>,
        dumps: u64,
        suppressed: u64,
        seq: u64,
        last_reason: String,
    }

    struct Ring {
        cap: usize,
        entries: VecDeque<(u64, String)>,
    }

    struct RingHandle {
        ring: Mutex<Ring>,
    }

    thread_local! {
        static MY_RING: RefCell<Option<Arc<RingHandle>>> = const { RefCell::new(None) };
    }

    fn ring_capacity() -> usize {
        CONFIG
            .lock()
            .expect("flight config poisoned")
            .as_ref()
            .map(|c| c.ring_capacity)
            .unwrap_or_else(|| FlightConfig::default().ring_capacity)
    }

    /// Installs the recorder's configuration, clears every ring and
    /// resets the dump bookkeeping. Does not change the armed state.
    pub fn configure(cfg: FlightConfig) {
        let cap = cfg.ring_capacity.max(1);
        *CONFIG.lock().expect("flight config poisoned") = Some(cfg);
        for h in RINGS.lock().expect("flight rings poisoned").iter() {
            let mut ring = h.ring.lock().expect("flight ring poisoned");
            ring.cap = cap;
            ring.entries.clear();
        }
        let mut d = DUMPS.lock().expect("flight dump state poisoned");
        *d = DumpState {
            last: None,
            dumps: 0,
            suppressed: 0,
            seq: 0,
            last_reason: String::new(),
        };
    }

    /// Arms or disarms the recorder at runtime (the compile-time gate is
    /// the `record` feature). Disarmed, [`offer`] is one relaxed load.
    pub fn set_armed(on: bool) {
        ARMED.store(on, Ordering::SeqCst);
    }

    /// Whether the recorder is currently capturing events.
    #[inline]
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Offers one pre-rendered JSONL event line to this thread's ring.
    /// No-op unless armed. Normally fed by the recorder's event path;
    /// public so tests and external emitters can inject lines.
    pub fn offer(line: &str) {
        if !armed() {
            return;
        }
        let seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed);
        MY_RING.with(|slot| {
            let mut slot = slot.borrow_mut();
            let handle = slot.get_or_insert_with(|| {
                let handle = Arc::new(RingHandle {
                    ring: Mutex::new(Ring {
                        cap: ring_capacity(),
                        entries: VecDeque::new(),
                    }),
                });
                RINGS
                    .lock()
                    .expect("flight rings poisoned")
                    .push(handle.clone());
                handle
            });
            let mut ring = handle.ring.lock().expect("flight ring poisoned");
            if ring.entries.len() >= ring.cap {
                ring.entries.pop_front();
            }
            ring.entries.push_back((seq, line.to_string()));
        });
    }

    /// A coherent snapshot of every ring, merged into global event
    /// order. Each ring is copied atomically (under its own lock); the
    /// merge key is the recorder's sequence stamp.
    pub fn snapshot() -> Vec<String> {
        let handles: Vec<Arc<RingHandle>> = RINGS.lock().expect("flight rings poisoned").clone();
        let mut entries: Vec<(u64, String)> = Vec::new();
        for h in handles {
            let ring = h.ring.lock().expect("flight ring poisoned");
            entries.extend(ring.entries.iter().cloned());
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, line)| line).collect()
    }

    /// Rate-limited trigger entry point: writes a postmortem bundle
    /// unless one was written within the configured cooldown (in which
    /// case the dump is counted as suppressed). Returns the bundle
    /// directory when one was written.
    pub fn dump(reason: &str) -> Option<PathBuf> {
        write_bundle(reason, false)
    }

    /// Like [`dump`] but bypasses the cooldown — a panic must always
    /// leave a bundle behind, even right after an SLO dump.
    pub fn dump_now(reason: &str) -> Option<PathBuf> {
        write_bundle(reason, true)
    }

    /// Installs a process-wide panic hook (once) that dumps a postmortem
    /// bundle before delegating to the previous hook. Worker-thread
    /// panics therefore leave evidence even when the process survives.
    pub fn install_panic_hook() {
        if PANIC_HOOK.swap(true, Ordering::SeqCst) {
            return;
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = match info.payload().downcast_ref::<&str>() {
                Some(s) => format!("panic: {s}"),
                None => match info.payload().downcast_ref::<String>() {
                    Some(s) => format!("panic: {s}"),
                    None => "panic".to_string(),
                },
            };
            let _ = dump_now(&reason);
            prev(info);
        }));
    }

    /// The manifest's `flight` section: `Some` once the recorder was
    /// armed or dumped, so pre-flight manifests stay byte-identical.
    pub fn manifest_summary() -> Option<FlightSummary> {
        let d = DUMPS.lock().expect("flight dump state poisoned");
        if !armed() && d.dumps == 0 {
            return None;
        }
        Some(FlightSummary {
            armed: armed(),
            dumps: d.dumps,
            suppressed: d.suppressed,
            last_reason: d.last_reason.clone(),
        })
    }

    /// Current dump bookkeeping (for tests and the serve drain path).
    pub fn stats() -> (u64, u64) {
        let d = DUMPS.lock().expect("flight dump state poisoned");
        (d.dumps, d.suppressed)
    }

    fn write_bundle(reason: &str, bypass_cooldown: bool) -> Option<PathBuf> {
        if !armed() {
            return None;
        }
        let (root, cooldown, context) = {
            let cfg = CONFIG.lock().expect("flight config poisoned");
            let cfg = cfg.clone().unwrap_or_default();
            (
                cfg.history_root
                    .unwrap_or_else(|| PathBuf::from(".tfb-history")),
                cfg.cooldown,
                cfg.context,
            )
        };
        let dump_seq = {
            let mut d = DUMPS.lock().expect("flight dump state poisoned");
            if !bypass_cooldown {
                if let Some(last) = d.last {
                    if last.elapsed() < cooldown {
                        d.suppressed += 1;
                        crate::counter!("flight/suppressed").add(1);
                        return None;
                    }
                }
            }
            d.last = Some(Instant::now());
            d.dumps += 1;
            d.seq += 1;
            d.last_reason = reason.to_string();
            d.seq
        };
        let events = snapshot();
        let manifest = bundle_manifest(reason, dump_seq, &context, &events);
        let id = crate::fnv1a_hex(manifest.as_bytes());
        let dir = root.join("postmortems").join(&id);
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(dir.join("postmortem.manifest.json"), &manifest)?;
            let mut body = events.join("\n");
            if !body.is_empty() {
                body.push('\n');
            }
            std::fs::write(dir.join("events.jsonl"), body)?;
            let profile = profiler::collapsed();
            if !profile.is_empty() {
                std::fs::write(dir.join("profile.collapsed"), profile)?;
            }
            let mut index_line = String::with_capacity(128);
            index_line.push_str(&format!("{{\"seq\":{dump_seq},\"id\":\"{id}\",\"reason\":"));
            json_str(&mut index_line, reason);
            index_line.push_str(&format!(
                ",\"events\":{},\"path\":\"postmortems/{id}\"}}",
                events.len()
            ));
            let mut index = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(root.join("postmortems.jsonl"))?;
            writeln!(index, "{index_line}")?;
            Ok(())
        };
        match write() {
            Ok(()) => {
                crate::counter!("flight/dumps").add(1);
                eprintln!(
                    "flight recorder: wrote postmortem {} ({reason})",
                    dir.display()
                );
                Some(dir)
            }
            Err(e) => {
                eprintln!(
                    "flight recorder: could not write postmortem to {}: {e}",
                    dir.display()
                );
                None
            }
        }
    }

    /// The deterministic bundle manifest: sorted keys, sorted context,
    /// schema `tfb-postmortem/v1`. Same hand-rolled JSON style as the
    /// run manifest so the bundle needs no JSON dependency to write.
    fn bundle_manifest(
        reason: &str,
        dump_seq: u64,
        context: &[(String, String)],
        events: &[String],
    ) -> String {
        let metrics = crate::record::metrics_snapshot();
        let trace = crate::trace::snapshot();
        let mut context: Vec<(String, String)> = context.to_vec();
        context.sort();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"tfb-postmortem/v1\",\n  \"reason\": ");
        json_str(&mut out, reason);
        out.push_str(&format!(",\n  \"seq\": {dump_seq},\n"));
        out.push_str(&format!(
            "  \"cores\": {},\n",
            std::thread::available_parallelism().map_or(1, |p| p.get())
        ));
        out.push_str("  \"context\": {");
        for (i, (k, v)) in context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_str(&mut out, v);
        }
        if !context.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (k, v)) in metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !metrics.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_num(&mut out, *v);
        }
        if !metrics.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        match trace.slo.filter(|s| s.total > 0) {
            Some(slo) => {
                out.push_str("  \"slo\": {\"threshold_ms\": ");
                json_num(&mut out, slo.threshold_ms);
                out.push_str(", \"objective\": ");
                json_num(&mut out, slo.objective);
                out.push_str(&format!(
                    ", \"total\": {}, \"breaches\": {}, \"burn_rate_1m\": ",
                    slo.total, slo.breaches
                ));
                json_num(&mut out, slo.burn_rate_1m);
                out.push_str(", \"burn_rate_5m\": ");
                json_num(&mut out, slo.burn_rate_5m);
                out.push_str("},\n");
            }
            None => out.push_str("  \"slo\": null,\n"),
        }
        out.push_str("  \"exemplars\": [");
        for (i, e) in trace.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"trace_id\": ");
            json_str(&mut out, &e.trace_id);
            out.push_str(&format!(
                ", \"total_ns\": {}, \"batch_size\": {}, \"phases\": {{",
                e.total_ns, e.batch_size
            ));
            for (j, (phase, ns)) in e.phases.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json_str(&mut out, phase);
                out.push_str(&format!(": {ns}"));
            }
            out.push_str("}}");
        }
        if !trace.exemplars.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"profiling\": {},\n  \"events\": {}\n}}\n",
            profiler::active(),
            events.len()
        ));
        out
    }

    /// The wall-clock sampling profiler: a sampler thread reads
    /// registered threads' mirrored span stacks at a fixed rate. Safe by
    /// construction — it never walks native stacks, only the span names
    /// the recorder already tracks.
    pub mod profiler {
        use super::*;
        use std::collections::HashMap;
        use std::time::Duration;

        /// Deepest mirrored span nesting; deeper frames are truncated.
        pub const MAX_DEPTH: usize = 32;

        /// Cross-thread mirror of one registered thread's span stack:
        /// interned span-name ids plus a depth watermark. The owner
        /// writes on span enter/close; the sampler reads racily —
        /// a torn sample is at worst attributed to a neighboring frame,
        /// never unsafe.
        struct SharedStack {
            name: String,
            alive: AtomicBool,
            depth: AtomicU64,
            frames: [AtomicU64; MAX_DEPTH],
        }

        static REGISTERED_ANY: AtomicBool = AtomicBool::new(false);
        static PROFILED: Mutex<Vec<Arc<SharedStack>>> = Mutex::new(Vec::new());
        /// Interned span names: id = index + 1 (0 means "empty slot").
        static INTERN: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        /// Aggregated samples: (thread name, `a;b;c` stack) → count.
        #[allow(clippy::type_complexity)]
        static SAMPLES: Mutex<Option<HashMap<(String, String), u64>>> = Mutex::new(None);
        static ACTIVE: AtomicBool = AtomicBool::new(false);
        #[allow(clippy::type_complexity)]
        static SAMPLER: Mutex<Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>> =
            Mutex::new(None);

        thread_local! {
            static MIRROR: RefCell<Option<Arc<SharedStack>>> = const { RefCell::new(None) };
        }

        /// RAII registration of the current thread with the profiler;
        /// dropping it stops the sampler from visiting this thread.
        pub struct ProfiledThread {
            stack: Arc<SharedStack>,
        }

        impl Drop for ProfiledThread {
            fn drop(&mut self) {
                self.stack.alive.store(false, Ordering::Release);
                MIRROR.with(|m| m.borrow_mut().take());
                PROFILED
                    .lock()
                    .expect("profiler registry poisoned")
                    .retain(|s| s.alive.load(Ordering::Acquire));
            }
        }

        /// Registers the current thread under `name`. Until the guard
        /// drops, the thread's span enters/closes are mirrored for the
        /// sampler.
        pub fn register_thread(name: &str) -> ProfiledThread {
            let stack = Arc::new(SharedStack {
                name: name.to_string(),
                alive: AtomicBool::new(true),
                depth: AtomicU64::new(0),
                frames: [const { AtomicU64::new(0) }; MAX_DEPTH],
            });
            PROFILED
                .lock()
                .expect("profiler registry poisoned")
                .push(stack.clone());
            MIRROR.with(|m| *m.borrow_mut() = Some(stack.clone()));
            REGISTERED_ANY.store(true, Ordering::SeqCst);
            ProfiledThread { stack }
        }

        fn intern(name: &'static str) -> u64 {
            let mut table = INTERN.lock().expect("profiler intern poisoned");
            match table.iter().position(|&n| std::ptr::eq(n, name)) {
                Some(i) => (i + 1) as u64,
                None => {
                    table.push(name);
                    table.len() as u64
                }
            }
        }

        /// Mirrors a span enter on a registered thread (no-op elsewhere:
        /// one relaxed load plus a TLS probe).
        #[inline]
        pub(crate) fn frame_push(name: &'static str) {
            if !REGISTERED_ANY.load(Ordering::Relaxed) {
                return;
            }
            MIRROR.with(|m| {
                if let Some(stack) = m.borrow().as_ref() {
                    let d = stack.depth.load(Ordering::Relaxed) as usize;
                    if d < MAX_DEPTH {
                        stack.frames[d].store(intern(name), Ordering::Relaxed);
                    }
                    stack.depth.store(d as u64 + 1, Ordering::Release);
                }
            });
        }

        /// Mirrors a span close on a registered thread.
        #[inline]
        pub(crate) fn frame_pop() {
            if !REGISTERED_ANY.load(Ordering::Relaxed) {
                return;
            }
            MIRROR.with(|m| {
                if let Some(stack) = m.borrow().as_ref() {
                    let d = stack.depth.load(Ordering::Relaxed);
                    stack.depth.store(d.saturating_sub(1), Ordering::Release);
                }
            });
        }

        /// Whether the sampler thread is running.
        pub fn active() -> bool {
            ACTIVE.load(Ordering::Relaxed)
        }

        /// Starts the sampler at `hz` samples per second (clamped to
        /// 1..=1000). No-op when already running.
        pub fn start(hz: u32) {
            let mut sampler = SAMPLER.lock().expect("profiler sampler poisoned");
            if sampler.is_some() {
                return;
            }
            *SAMPLES.lock().expect("profiler samples poisoned") = Some(HashMap::new());
            ACTIVE.store(true, Ordering::SeqCst);
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let period = Duration::from_secs_f64(1.0 / (hz.clamp(1, 1000) as f64));
            let handle = std::thread::Builder::new()
                .name("tfb-obs-profiler".to_string())
                .spawn(move || sampler_loop(period, stop2))
                .expect("spawn profiler thread");
            *sampler = Some((stop, handle));
        }

        /// Stops the sampler and flushes its remaining samples.
        pub fn stop() {
            let taken = SAMPLER.lock().expect("profiler sampler poisoned").take();
            if let Some((stop, handle)) = taken {
                stop.store(true, Ordering::SeqCst);
                let _ = handle.join();
            }
            ACTIVE.store(false, Ordering::SeqCst);
        }

        fn sampler_loop(period: Duration, stop: Arc<AtomicBool>) {
            let mut pending: HashMap<(String, String), u64> = HashMap::new();
            let mut last_flush = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                sample_once(&mut pending);
                if last_flush.elapsed() >= Duration::from_secs(1) {
                    flush(&mut pending);
                    last_flush = Instant::now();
                }
            }
            sample_once(&mut pending);
            flush(&mut pending);
        }

        fn sample_once(pending: &mut HashMap<(String, String), u64>) {
            let stacks: Vec<Arc<SharedStack>> =
                PROFILED.lock().expect("profiler registry poisoned").clone();
            let names: Vec<&'static str> = INTERN.lock().expect("profiler intern poisoned").clone();
            for s in stacks {
                if !s.alive.load(Ordering::Acquire) {
                    continue;
                }
                let depth = (s.depth.load(Ordering::Acquire) as usize).min(MAX_DEPTH);
                let mut frames: Vec<&str> = Vec::with_capacity(depth);
                for f in s.frames.iter().take(depth) {
                    let id = f.load(Ordering::Relaxed) as usize;
                    match id.checked_sub(1).and_then(|i| names.get(i)) {
                        Some(name) => frames.push(name),
                        None => break,
                    }
                }
                let stack = if frames.is_empty() {
                    "<idle>".to_string()
                } else {
                    frames.join(";")
                };
                *pending.entry((s.name.clone(), stack)).or_insert(0) += 1;
            }
        }

        /// Merges pending counts into the global aggregate and streams
        /// them as `psample` events through the recorder's event path.
        fn flush(pending: &mut HashMap<(String, String), u64>) {
            if pending.is_empty() {
                return;
            }
            let mut rows: Vec<(String, String, u64)> = pending
                .drain()
                .map(|((thread, stack), count)| (thread, stack, count))
                .collect();
            rows.sort();
            if let Some(all) = SAMPLES.lock().expect("profiler samples poisoned").as_mut() {
                for (thread, stack, count) in &rows {
                    *all.entry((thread.clone(), stack.clone())).or_insert(0) += count;
                }
            }
            crate::record::emit_profile_samples(&rows);
        }

        /// The aggregate as flamegraph-ready collapsed-stack lines
        /// (`thread;span;span count`), sorted for determinism. Empty
        /// until the sampler has flushed at least once.
        pub fn collapsed() -> String {
            let samples = SAMPLES.lock().expect("profiler samples poisoned");
            let Some(map) = samples.as_ref() else {
                return String::new();
            };
            let mut rows: Vec<(&(String, String), &u64)> = map.iter().collect();
            rows.sort();
            let mut out = String::new();
            for ((thread, stack), count) in rows {
                out.push_str(&format!("{thread};{stack} {count}\n"));
            }
            out
        }
    }
}

#[cfg(not(feature = "record"))]
mod imp {
    use super::FlightConfig;
    use crate::manifest::FlightSummary;
    use std::path::PathBuf;

    /// No-op.
    #[inline(always)]
    pub fn configure(_cfg: FlightConfig) {}

    /// No-op.
    #[inline(always)]
    pub fn set_armed(_on: bool) {}

    /// Always `false` in the no-op build.
    #[inline(always)]
    pub fn armed() -> bool {
        false
    }

    /// No-op.
    #[inline(always)]
    pub fn offer(_line: &str) {}

    /// Always empty.
    #[inline(always)]
    pub fn snapshot() -> Vec<String> {
        Vec::new()
    }

    /// No-op; never writes a bundle.
    #[inline(always)]
    pub fn dump(_reason: &str) -> Option<PathBuf> {
        None
    }

    /// No-op; never writes a bundle.
    #[inline(always)]
    pub fn dump_now(_reason: &str) -> Option<PathBuf> {
        None
    }

    /// No-op.
    #[inline(always)]
    pub fn install_panic_hook() {}

    /// Always `None`; manifests never grow a `flight` section.
    #[inline(always)]
    pub fn manifest_summary() -> Option<FlightSummary> {
        None
    }

    /// Always zero.
    #[inline(always)]
    pub fn stats() -> (u64, u64) {
        (0, 0)
    }

    /// No-op profiler mirror.
    pub mod profiler {
        /// Zero-sized registration stub.
        pub struct ProfiledThread;

        /// No-op.
        #[inline(always)]
        pub fn register_thread(_name: &str) -> ProfiledThread {
            ProfiledThread
        }

        /// Always `false` in the no-op build.
        #[inline(always)]
        pub fn active() -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn start(_hz: u32) {}

        /// No-op.
        #[inline(always)]
        pub fn stop() {}

        /// Always empty.
        #[inline(always)]
        pub fn collapsed() -> String {
            String::new()
        }
    }
}

pub use imp::{
    armed, configure, dump, dump_now, install_panic_hook, manifest_summary, offer, profiler,
    set_armed, snapshot, stats,
};

/// Re-exported so callers can name the section type without reaching
/// into [`crate::manifest`].
pub type Summary = FlightSummary;

//! Chrome/Perfetto trace-event export: turns a run's JSONL event log
//! (spans from any run, request traces from serve sessions) into the
//! Trace Event JSON format `chrome://tracing` and https://ui.perfetto.dev
//! load directly.
//!
//! Mapping:
//!
//! * every closed span becomes an `"X"` (complete) slice on its thread's
//!   lane — `ts` is the span's start, `dur` its wall time, both in µs;
//! * every request trace becomes a `"request"` slice on the connection
//!   handler's lane, with its phases laid out as consecutive child
//!   slices (`phase:parse`, `phase:queue`, …) reconstructed from the
//!   phase breakdown;
//! * `serve.batch` spans (the batch worker's lane) link to the requests
//!   they carried via `"s"`/`"f"` flow events keyed by batch id;
//! * `"M"` metadata events name the process and each thread lane, so
//!   accept threads and the batch worker render as distinct, labelled
//!   tracks.
//!
//! The output is deterministic for a given input: events are sorted by
//! `(ts, tid, phase-kind, name)` before serialization.

use std::collections::{BTreeMap, BTreeSet};
use tfb_json::JsonValue;

/// One pending trace event before sorting.
struct Event {
    ts_us: f64,
    dur_us: Option<f64>,
    ph: &'static str,
    tid: u64,
    name: String,
    id: Option<u64>,
    args: Vec<(String, JsonValue)>,
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|n| n.as_f64()).map(|n| n as u64)
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(|s| s.as_str())
}

/// Converts a JSONL event log (as written by the run sink) into Chrome
/// Trace Event JSON. Unknown event kinds are skipped; a line that is not
/// JSON at all is an error (the log is corrupt, not just newer).
pub fn chrome_trace(events: &str) -> Result<String, String> {
    let mut out: Vec<Event> = Vec::new();
    let mut tids: BTreeSet<u64> = BTreeSet::new();
    let mut batch_tids: BTreeSet<u64> = BTreeSet::new();
    // Where each batch ran: batch id → (tid, start µs).
    let mut batch_spans: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    let mut flows: Vec<(u64, f64, u64)> = Vec::new(); // (batch id, request ts, request tid)
    for (lineno, line) in events.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", lineno + 1))?;
        match get_str(&v, "ev") {
            Some("span") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let ns = get_u64(&v, "ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let path = get_str(&v, "path").unwrap_or("span").to_string();
                let ts_us = t_ns.saturating_sub(ns) as f64 / 1e3;
                tids.insert(thread);
                let mut args: Vec<(String, JsonValue)> = Vec::new();
                for key in ["dataset", "method"] {
                    if let Some(val) = get_str(&v, key) {
                        if !val.is_empty() {
                            args.push((key.to_string(), JsonValue::String(val.to_string())));
                        }
                    }
                }
                if let Some(fields) = v.get("fields").and_then(|f| f.as_object()) {
                    for (k, fv) in fields {
                        args.push((k.clone(), fv.clone()));
                    }
                }
                if path == "serve.batch" {
                    batch_tids.insert(thread);
                    if let Some(batch_id) = v
                        .get("fields")
                        .and_then(|f| f.get("batch_id"))
                        .and_then(|b| b.as_f64())
                    {
                        batch_spans
                            .entry(batch_id as u64)
                            .or_insert((thread, ts_us));
                    }
                }
                out.push(Event {
                    ts_us,
                    dur_us: Some(ns as f64 / 1e3),
                    ph: "X",
                    tid: thread,
                    name: path,
                    id: None,
                    args,
                });
            }
            Some("trace") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let total_ns = get_u64(&v, "total_ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let start_us = t_ns.saturating_sub(total_ns) as f64 / 1e3;
                tids.insert(thread);
                let trace_id = get_str(&v, "trace_id").unwrap_or("").to_string();
                let mut args = vec![("trace_id".to_string(), JsonValue::String(trace_id.clone()))];
                if let Some(status) = get_str(&v, "status") {
                    args.push(("status".to_string(), JsonValue::String(status.to_string())));
                }
                let batch_id = match v.get("batch_id") {
                    Some(JsonValue::Number(b)) => Some(*b as u64),
                    _ => None,
                };
                if let Some(b) = batch_id {
                    args.push(("batch_id".to_string(), JsonValue::Number(b as f64)));
                    flows.push((b, start_us, thread));
                }
                out.push(Event {
                    ts_us: start_us,
                    dur_us: Some(total_ns as f64 / 1e3),
                    ph: "X",
                    tid: thread,
                    name: format!("request {}", &trace_id[..trace_id.len().min(8)]),
                    id: None,
                    args,
                });
                // Phases as consecutive child slices, in causal order.
                let mut cursor = start_us;
                if let Some(phases) = v.get("phases").and_then(|p| p.as_object()) {
                    for phase in crate::trace::Phase::ALL {
                        let Some(ns) = phases
                            .iter()
                            .find(|(k, _)| k.as_str() == phase.label())
                            .and_then(|(_, n)| n.as_f64())
                        else {
                            continue;
                        };
                        let dur = ns / 1e3;
                        out.push(Event {
                            ts_us: cursor,
                            dur_us: Some(dur),
                            ph: "X",
                            tid: thread,
                            name: format!("phase:{}", phase.label()),
                            id: None,
                            args: Vec::new(),
                        });
                        cursor += dur;
                    }
                }
            }
            // run_start/run_end/health carry no timeline geometry.
            _ => {}
        }
    }
    // Flow arrows request → batch, keyed by batch id.
    for (batch_id, ts, tid) in flows {
        let Some(&(batch_tid, batch_ts)) = batch_spans.get(&batch_id) else {
            continue;
        };
        out.push(Event {
            ts_us: ts,
            dur_us: None,
            ph: "s",
            tid,
            name: "batch".to_string(),
            id: Some(batch_id),
            args: Vec::new(),
        });
        out.push(Event {
            ts_us: batch_ts,
            dur_us: None,
            ph: "f",
            tid: batch_tid,
            name: "batch".to_string(),
            id: Some(batch_id),
            args: Vec::new(),
        });
    }
    out.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then(a.tid.cmp(&b.tid))
            .then(a.ph.cmp(b.ph))
            .then(a.name.cmp(&b.name))
    });
    let mut trace_events: Vec<JsonValue> = Vec::new();
    trace_events.push(meta_event(0, "process_name", "name", "tfb"));
    for &tid in &tids {
        let label = if batch_tids.contains(&tid) {
            "batch worker".to_string()
        } else {
            format!("worker-{tid}")
        };
        trace_events.push(meta_event(tid, "thread_name", "name", &label));
    }
    for e in out {
        let mut obj: Vec<(String, JsonValue)> = vec![
            ("ph".to_string(), JsonValue::String(e.ph.to_string())),
            ("name".to_string(), JsonValue::String(e.name)),
            ("pid".to_string(), JsonValue::Number(1.0)),
            ("tid".to_string(), JsonValue::Number(e.tid as f64)),
            ("ts".to_string(), JsonValue::Number(e.ts_us)),
        ];
        if let Some(dur) = e.dur_us {
            obj.push(("dur".to_string(), JsonValue::Number(dur)));
        }
        if let Some(id) = e.id {
            obj.push(("cat".to_string(), JsonValue::String("batch".to_string())));
            obj.push(("id".to_string(), JsonValue::Number(id as f64)));
            if e.ph == "f" {
                obj.push(("bp".to_string(), JsonValue::String("e".to_string())));
            }
        }
        if !e.args.is_empty() {
            obj.push(("args".to_string(), JsonValue::Object(e.args)));
        }
        trace_events.push(JsonValue::Object(obj));
    }
    let doc = JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(trace_events)),
        (
            "displayTimeUnit".to_string(),
            JsonValue::String("ms".to_string()),
        ),
    ]);
    Ok(doc.compact() + "\n")
}

fn meta_event(tid: u64, name: &str, arg_key: &str, arg_val: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("ph".to_string(), JsonValue::String("M".to_string())),
        ("name".to_string(), JsonValue::String(name.to_string())),
        ("pid".to_string(), JsonValue::Number(1.0)),
        ("tid".to_string(), JsonValue::Number(tid as f64)),
        (
            "args".to_string(),
            JsonValue::Object(vec![(
                arg_key.to_string(),
                JsonValue::String(arg_val.to_string()),
            )]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> String {
        [
            r#"{"ev":"run_start","cores":4}"#,
            r#"{"ev":"span","seq":1,"t_ns":2000000,"thread":3,"depth":0,"path":"serve.batch","dataset":"","method":"","ns":1500000,"fields":{"batch_id":7,"rows":2}}"#,
            r#"{"ev":"trace","seq":2,"t_ns":2400000,"thread":1,"trace_id":"00000001000000aa","status":"ok","total_ns":2100000,"batch_id":7,"batch_size":2,"phases":{"parse":100000,"queue":200000,"collect":300000,"infer":750000,"dispatch":250000,"write":500000}}"#,
            r#"{"ev":"trace","seq":3,"t_ns":2500000,"thread":2,"trace_id":"00000001000000ab","status":"ok","total_ns":2200000,"batch_id":7,"batch_size":2,"phases":{"parse":100000,"infer":750000,"write":400000}}"#,
            r#"{"ev":"run_end","wall_ns":5000000}"#,
        ]
        .join("\n")
            + "\n"
    }

    #[test]
    fn export_is_valid_chrome_trace_json_with_lanes_and_flows() {
        let json = chrome_trace(&sample_events()).expect("export");
        let doc = JsonValue::parse(&json).expect("output is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let ph = |e: &JsonValue| {
            e.get("ph")
                .and_then(|p| p.as_str())
                .unwrap_or("")
                .to_string()
        };
        let name = |e: &JsonValue| {
            e.get("name")
                .and_then(|p| p.as_str())
                .unwrap_or("")
                .to_string()
        };
        // Thread lanes: the batch worker's lane is named distinctly from
        // the connection handlers'.
        let lane_names: Vec<String> = events
            .iter()
            .filter(|e| ph(e) == "M" && name(e) == "thread_name")
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
            })
            .collect();
        assert!(
            lane_names.contains(&"batch worker".to_string()),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&"worker-1".to_string()),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&"worker-2".to_string()),
            "{lane_names:?}"
        );
        // Request slices plus per-phase child slices.
        let request_slices: Vec<&JsonValue> = events
            .iter()
            .filter(|e| ph(e) == "X" && name(e).starts_with("request "))
            .collect();
        assert_eq!(request_slices.len(), 2);
        let phase_slices = events
            .iter()
            .filter(|e| ph(e) == "X" && name(e).starts_with("phase:"))
            .count();
        assert_eq!(phase_slices, 6 + 3);
        // Flow events pair up per request, keyed by the batch id.
        let starts = events.iter().filter(|e| ph(e) == "s").count();
        let finishes = events.iter().filter(|e| ph(e) == "f").count();
        assert_eq!(starts, 2);
        assert_eq!(finishes, 2);
        // Every slice has non-negative geometry.
        for e in events {
            if ph(e) == "X" {
                assert!(e.get("ts").and_then(|v| v.as_f64()).unwrap() >= 0.0);
                assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn export_is_deterministic_for_identical_inputs() {
        let a = chrome_trace(&sample_events()).expect("export");
        let b = chrome_trace(&sample_events()).expect("export");
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_lines_are_an_error_but_unknown_events_are_not() {
        assert!(chrome_trace("this is not json\n").is_err());
        let future = r#"{"ev":"hologram","t_ns":1}"#.to_string() + "\n";
        let json = chrome_trace(&future).expect("unknown event kinds are skipped");
        assert!(json.contains("traceEvents"));
    }
}

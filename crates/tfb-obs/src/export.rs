//! Chrome/Perfetto trace-event export: turns a run's JSONL event log
//! (spans from any run, request traces from serve sessions) into the
//! Trace Event JSON format `chrome://tracing` and https://ui.perfetto.dev
//! load directly.
//!
//! Mapping:
//!
//! * every closed span becomes an `"X"` (complete) slice on its thread's
//!   lane — `ts` is the span's start, `dur` its wall time, both in µs;
//! * every request trace becomes a `"request"` slice on the connection
//!   handler's lane, with its phases laid out as consecutive child
//!   slices (`phase:parse`, `phase:queue`, …) reconstructed from the
//!   phase breakdown;
//! * `serve.batch` spans (the batch worker's lane) link to the requests
//!   they carried via `"s"`/`"f"` flow events keyed by batch id;
//! * `"M"` metadata events name the process and each thread lane, so
//!   accept threads and the batch worker render as distinct, labelled
//!   tracks.
//!
//! The output is deterministic for a given input: events are sorted by
//! `(ts, tid, phase-kind, name)` before serialization.

use std::collections::{BTreeMap, BTreeSet};
use tfb_json::JsonValue;

/// One pending trace event before sorting.
struct Event {
    ts_us: f64,
    dur_us: Option<f64>,
    ph: &'static str,
    tid: u64,
    name: String,
    cat: Option<&'static str>,
    id: Option<u64>,
    args: Vec<(String, JsonValue)>,
}

/// Flow ids for work-steal arrows live above this floor so they can never
/// collide with batch ids (which count up from zero).
const STEAL_FLOW_BASE: u64 = 1_000_000_000;

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|n| n.as_f64()).map(|n| n as u64)
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    v.get(key).and_then(|s| s.as_str())
}

/// Converts a JSONL event log (as written by the run sink) into Chrome
/// Trace Event JSON. Unknown event kinds are skipped; a line that is not
/// JSON at all is an error (the log is corrupt, not just newer).
pub fn chrome_trace(events: &str) -> Result<String, String> {
    let mut out: Vec<Event> = Vec::new();
    let mut tids: BTreeSet<u64> = BTreeSet::new();
    let mut batch_tids: BTreeSet<u64> = BTreeSet::new();
    // Where each batch ran: batch id → (tid, start µs).
    let mut batch_spans: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    // (batch id, request ts, request tid)
    let mut flows: Vec<(u64, f64, u64)> = Vec::new();
    // Sharded server geometry: which shard each batcher tid serves, and
    // the batcher tid behind each shard (for steal arrows).
    let mut shard_of_tid: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tid_of_shard: BTreeMap<u64, u64> = BTreeMap::new();
    // (flow id, thief ts µs, thief tid, victim shard) — resolved after the
    // pass, once every shard's batcher lane is known.
    let mut steals: Vec<(u64, f64, u64, u64)> = Vec::new();
    // Profiler counter tracks: (thread name, ts µs) → samples in the tick.
    let mut psamples: BTreeMap<(String, u64), u64> = BTreeMap::new();
    let mut psample_tids: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in events.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", lineno + 1))?;
        match get_str(&v, "ev") {
            Some("span") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let ns = get_u64(&v, "ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let path = get_str(&v, "path").unwrap_or("span").to_string();
                let ts_us = t_ns.saturating_sub(ns) as f64 / 1e3;
                tids.insert(thread);
                let mut args: Vec<(String, JsonValue)> = Vec::new();
                for key in ["dataset", "method"] {
                    if let Some(val) = get_str(&v, key) {
                        if !val.is_empty() {
                            args.push((key.to_string(), JsonValue::String(val.to_string())));
                        }
                    }
                }
                if let Some(fields) = v.get("fields").and_then(|f| f.as_object()) {
                    for (k, fv) in fields {
                        args.push((k.clone(), fv.clone()));
                    }
                }
                if path == "serve.batch" {
                    batch_tids.insert(thread);
                    let fields = v.get("fields");
                    if let Some(batch_id) = fields
                        .and_then(|f| f.get("batch_id"))
                        .and_then(|b| b.as_f64())
                    {
                        batch_spans
                            .entry(batch_id as u64)
                            .or_insert((thread, ts_us));
                    }
                    if let Some(shard) =
                        fields.and_then(|f| f.get("shard")).and_then(|s| s.as_f64())
                    {
                        shard_of_tid.entry(thread).or_insert(shard as u64);
                        tid_of_shard.entry(shard as u64).or_insert(thread);
                    }
                }
                out.push(Event {
                    ts_us,
                    dur_us: Some(ns as f64 / 1e3),
                    ph: "X",
                    tid: thread,
                    name: path,
                    cat: None,
                    id: None,
                    args,
                });
            }
            Some("trace") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let total_ns = get_u64(&v, "total_ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let start_us = t_ns.saturating_sub(total_ns) as f64 / 1e3;
                tids.insert(thread);
                let trace_id = get_str(&v, "trace_id").unwrap_or("").to_string();
                let mut args = vec![("trace_id".to_string(), JsonValue::String(trace_id.clone()))];
                if let Some(status) = get_str(&v, "status") {
                    args.push(("status".to_string(), JsonValue::String(status.to_string())));
                }
                let batch_id = match v.get("batch_id") {
                    Some(JsonValue::Number(b)) => Some(*b as u64),
                    _ => None,
                };
                if let Some(b) = batch_id {
                    args.push(("batch_id".to_string(), JsonValue::Number(b as f64)));
                    flows.push((b, start_us, thread));
                }
                out.push(Event {
                    ts_us: start_us,
                    dur_us: Some(total_ns as f64 / 1e3),
                    ph: "X",
                    tid: thread,
                    name: format!("request {}", &trace_id[..trace_id.len().min(8)]),
                    cat: None,
                    id: None,
                    args,
                });
                // Phases as consecutive child slices, in causal order.
                let mut cursor = start_us;
                if let Some(phases) = v.get("phases").and_then(|p| p.as_object()) {
                    for phase in crate::trace::Phase::ALL {
                        let Some(ns) = phases
                            .iter()
                            .find(|(k, _)| k.as_str() == phase.label())
                            .and_then(|(_, n)| n.as_f64())
                        else {
                            continue;
                        };
                        let dur = ns / 1e3;
                        out.push(Event {
                            ts_us: cursor,
                            dur_us: Some(dur),
                            ph: "X",
                            tid: thread,
                            name: format!("phase:{}", phase.label()),
                            cat: None,
                            id: None,
                            args: Vec::new(),
                        });
                        cursor += dur;
                    }
                }
            }
            Some("steal") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let from = get_u64(&v, "from").unwrap_or(0);
                let to = get_u64(&v, "to").unwrap_or(0);
                let moved = get_u64(&v, "moved").unwrap_or(0);
                let seq = get_u64(&v, "seq").unwrap_or(0);
                let ts_us = t_ns as f64 / 1e3;
                tids.insert(thread);
                out.push(Event {
                    ts_us,
                    dur_us: None,
                    ph: "i",
                    tid: thread,
                    name: format!("steal shard{from}→shard{to}"),
                    cat: None,
                    id: None,
                    args: vec![
                        ("from".to_string(), JsonValue::Number(from as f64)),
                        ("to".to_string(), JsonValue::Number(to as f64)),
                        ("moved".to_string(), JsonValue::Number(moved as f64)),
                    ],
                });
                steals.push((STEAL_FLOW_BASE + seq, ts_us, thread, from));
            }
            Some("psample") => {
                let t_ns = get_u64(&v, "t_ns").unwrap_or(0);
                let thread = get_u64(&v, "thread").unwrap_or(0);
                let name = get_str(&v, "name").unwrap_or("?").to_string();
                let count = get_u64(&v, "count").unwrap_or(0);
                psample_tids.entry(name.clone()).or_insert(thread);
                *psamples.entry((name, t_ns)).or_insert(0) += count;
            }
            // run_start/run_end/health carry no timeline geometry.
            _ => {}
        }
    }
    // Flow arrows request → batch, keyed by batch id.
    for (batch_id, ts, tid) in flows {
        let Some(&(batch_tid, batch_ts)) = batch_spans.get(&batch_id) else {
            continue;
        };
        out.push(Event {
            ts_us: ts,
            dur_us: None,
            ph: "s",
            tid,
            name: "batch".to_string(),
            cat: Some("batch"),
            id: Some(batch_id),
            args: Vec::new(),
        });
        out.push(Event {
            ts_us: batch_ts,
            dur_us: None,
            ph: "f",
            tid: batch_tid,
            name: "batch".to_string(),
            cat: Some("batch"),
            id: Some(batch_id),
            args: Vec::new(),
        });
    }
    // Flow arrows victim batcher → thief, one per work-steal. Skipped when
    // the victim shard never closed a batch (its lane is unknown).
    for (flow_id, ts, thief_tid, victim_shard) in steals {
        let Some(&victim_tid) = tid_of_shard.get(&victim_shard) else {
            continue;
        };
        out.push(Event {
            ts_us: ts,
            dur_us: None,
            ph: "s",
            tid: victim_tid,
            name: "steal".to_string(),
            cat: Some("steal"),
            id: Some(flow_id),
            args: Vec::new(),
        });
        out.push(Event {
            ts_us: ts,
            dur_us: None,
            ph: "f",
            tid: thief_tid,
            name: "steal".to_string(),
            cat: Some("steal"),
            id: Some(flow_id),
            args: Vec::new(),
        });
    }
    // Profiler sample rates as Perfetto counter tracks, one per profiled
    // thread, summed across stacks per flush tick.
    for (&(ref name, t_ns), &count) in &psamples {
        let tid = psample_tids.get(name).copied().unwrap_or(0);
        out.push(Event {
            ts_us: t_ns as f64 / 1e3,
            dur_us: None,
            ph: "C",
            tid,
            name: format!("profile:{name}"),
            cat: None,
            id: None,
            args: vec![("samples".to_string(), JsonValue::Number(count as f64))],
        });
    }
    out.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then(a.tid.cmp(&b.tid))
            .then(a.ph.cmp(b.ph))
            .then(a.name.cmp(&b.name))
    });
    let mut trace_events: Vec<JsonValue> = Vec::new();
    trace_events.push(meta_event(0, "process_name", "name", "tfb"));
    for &tid in &tids {
        let label = if let Some(shard) = shard_of_tid.get(&tid) {
            format!("shard {shard} batcher")
        } else if batch_tids.contains(&tid) {
            "batch worker".to_string()
        } else {
            format!("worker-{tid}")
        };
        trace_events.push(meta_event(tid, "thread_name", "name", &label));
    }
    for e in out {
        let mut obj: Vec<(String, JsonValue)> = vec![
            ("ph".to_string(), JsonValue::String(e.ph.to_string())),
            ("name".to_string(), JsonValue::String(e.name)),
            ("pid".to_string(), JsonValue::Number(1.0)),
            ("tid".to_string(), JsonValue::Number(e.tid as f64)),
            ("ts".to_string(), JsonValue::Number(e.ts_us)),
        ];
        if let Some(dur) = e.dur_us {
            obj.push(("dur".to_string(), JsonValue::Number(dur)));
        }
        if let Some(cat) = e.cat {
            obj.push(("cat".to_string(), JsonValue::String(cat.to_string())));
        }
        if let Some(id) = e.id {
            obj.push(("id".to_string(), JsonValue::Number(id as f64)));
            if e.ph == "f" {
                obj.push(("bp".to_string(), JsonValue::String("e".to_string())));
            }
        }
        if e.ph == "i" {
            obj.push(("s".to_string(), JsonValue::String("t".to_string())));
        }
        if !e.args.is_empty() {
            obj.push(("args".to_string(), JsonValue::Object(e.args)));
        }
        trace_events.push(JsonValue::Object(obj));
    }
    let doc = JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(trace_events)),
        (
            "displayTimeUnit".to_string(),
            JsonValue::String("ms".to_string()),
        ),
    ]);
    Ok(doc.compact() + "\n")
}

fn meta_event(tid: u64, name: &str, arg_key: &str, arg_val: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("ph".to_string(), JsonValue::String("M".to_string())),
        ("name".to_string(), JsonValue::String(name.to_string())),
        ("pid".to_string(), JsonValue::Number(1.0)),
        ("tid".to_string(), JsonValue::Number(tid as f64)),
        (
            "args".to_string(),
            JsonValue::Object(vec![(
                arg_key.to_string(),
                JsonValue::String(arg_val.to_string()),
            )]),
        ),
    ])
}

/// Aggregates `psample` profiler events from a JSONL event log into the
/// collapsed-stack format flamegraph tools consume: one
/// `thread;frame;frame count` line per distinct stack, sorted. Returns an
/// empty string when the log carries no samples (profiler was off).
pub fn collapsed_profile(events: &str) -> Result<String, String> {
    let mut agg: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (lineno, line) in events.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", lineno + 1))?;
        if get_str(&v, "ev") != Some("psample") {
            continue;
        }
        let name = get_str(&v, "name").unwrap_or("?").to_string();
        let stack = get_str(&v, "stack").unwrap_or("<idle>").to_string();
        let count = get_u64(&v, "count").unwrap_or(0);
        *agg.entry((name, stack)).or_insert(0) += count;
    }
    let mut out = String::new();
    for ((name, stack), count) in agg {
        out.push_str(&format!("{name};{stack} {count}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> String {
        [
            r#"{"ev":"run_start","cores":4}"#,
            r#"{"ev":"span","seq":1,"t_ns":2000000,"thread":3,"depth":0,"path":"serve.batch","dataset":"","method":"","ns":1500000,"fields":{"batch_id":7,"rows":2}}"#,
            r#"{"ev":"trace","seq":2,"t_ns":2400000,"thread":1,"trace_id":"00000001000000aa","status":"ok","total_ns":2100000,"batch_id":7,"batch_size":2,"phases":{"parse":100000,"queue":200000,"collect":300000,"infer":750000,"dispatch":250000,"write":500000}}"#,
            r#"{"ev":"trace","seq":3,"t_ns":2500000,"thread":2,"trace_id":"00000001000000ab","status":"ok","total_ns":2200000,"batch_id":7,"batch_size":2,"phases":{"parse":100000,"infer":750000,"write":400000}}"#,
            r#"{"ev":"run_end","wall_ns":5000000}"#,
        ]
        .join("\n")
            + "\n"
    }

    #[test]
    fn export_is_valid_chrome_trace_json_with_lanes_and_flows() {
        let json = chrome_trace(&sample_events()).expect("export");
        let doc = JsonValue::parse(&json).expect("output is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let ph = |e: &JsonValue| {
            e.get("ph")
                .and_then(|p| p.as_str())
                .unwrap_or("")
                .to_string()
        };
        let name = |e: &JsonValue| {
            e.get("name")
                .and_then(|p| p.as_str())
                .unwrap_or("")
                .to_string()
        };
        // Thread lanes: the batch worker's lane is named distinctly from
        // the connection handlers'.
        let lane_names: Vec<String> = events
            .iter()
            .filter(|e| ph(e) == "M" && name(e) == "thread_name")
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
            })
            .collect();
        assert!(
            lane_names.contains(&"batch worker".to_string()),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&"worker-1".to_string()),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&"worker-2".to_string()),
            "{lane_names:?}"
        );
        // Request slices plus per-phase child slices.
        let request_slices: Vec<&JsonValue> = events
            .iter()
            .filter(|e| ph(e) == "X" && name(e).starts_with("request "))
            .collect();
        assert_eq!(request_slices.len(), 2);
        let phase_slices = events
            .iter()
            .filter(|e| ph(e) == "X" && name(e).starts_with("phase:"))
            .count();
        assert_eq!(phase_slices, 6 + 3);
        // Flow events pair up per request, keyed by the batch id.
        let starts = events.iter().filter(|e| ph(e) == "s").count();
        let finishes = events.iter().filter(|e| ph(e) == "f").count();
        assert_eq!(starts, 2);
        assert_eq!(finishes, 2);
        // Every slice has non-negative geometry.
        for e in events {
            if ph(e) == "X" {
                assert!(e.get("ts").and_then(|v| v.as_f64()).unwrap() >= 0.0);
                assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
            }
        }
    }

    fn sharded_events() -> String {
        [
            r#"{"ev":"span","seq":1,"t_ns":2000000,"thread":3,"depth":0,"path":"serve.batch","dataset":"","method":"","ns":1500000,"fields":{"batch_id":7,"shard":0,"rows":2}}"#,
            r#"{"ev":"span","seq":2,"t_ns":2600000,"thread":4,"depth":0,"path":"serve.batch","dataset":"","method":"","ns":400000,"fields":{"batch_id":8,"shard":1,"rows":1}}"#,
            r#"{"ev":"steal","seq":3,"t_ns":2700000,"thread":4,"from":0,"to":1,"moved":3}"#,
            r#"{"ev":"psample","seq":4,"t_ns":3000000,"thread":3,"name":"shard0-batcher","stack":"serve.batch;serve.infer","count":5}"#,
            r#"{"ev":"psample","seq":5,"t_ns":3000000,"thread":3,"name":"shard0-batcher","stack":"<idle>","count":2}"#,
        ]
        .join("\n")
            + "\n"
    }

    #[test]
    fn sharded_export_has_shard_lanes_steal_arrows_and_counter_tracks() {
        let json = chrome_trace(&sharded_events()).expect("export");
        let doc = JsonValue::parse(&json).expect("output is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        fn ph(e: &JsonValue) -> &str {
            e.get("ph").and_then(|p| p.as_str()).unwrap_or("")
        }
        fn name(e: &JsonValue) -> &str {
            e.get("name").and_then(|p| p.as_str()).unwrap_or("")
        }
        // Batcher lanes are labelled per shard, not with the generic name.
        let lane_names: Vec<String> = events
            .iter()
            .filter(|e| ph(e) == "M" && name(e) == "thread_name")
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
            })
            .collect();
        assert!(
            lane_names.contains(&"shard 0 batcher".to_string()),
            "{lane_names:?}"
        );
        assert!(
            lane_names.contains(&"shard 1 batcher".to_string()),
            "{lane_names:?}"
        );
        // The steal renders as an instant on the thief's lane plus a flow
        // arrow from the victim's batcher lane (tid 3) to the thief's (4).
        let instants: Vec<&JsonValue> = events.iter().filter(|e| ph(e) == "i").collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(name(instants[0]), "steal shard0→shard1");
        let steal_flows: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("steal"))
            .collect();
        assert_eq!(steal_flows.len(), 2);
        let s = steal_flows.iter().find(|e| ph(e) == "s").expect("s");
        let f = steal_flows.iter().find(|e| ph(e) == "f").expect("f");
        assert_eq!(s.get("tid").and_then(|t| t.as_f64()), Some(3.0));
        assert_eq!(f.get("tid").and_then(|t| t.as_f64()), Some(4.0));
        // Profiler samples become a counter track summed across stacks.
        let counters: Vec<&JsonValue> = events.iter().filter(|e| ph(e) == "C").collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(name(counters[0]), "profile:shard0-batcher");
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("samples"))
                .and_then(|n| n.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn collapsed_profile_aggregates_by_stack() {
        let collapsed = collapsed_profile(&sharded_events()).expect("collapse");
        assert_eq!(
            collapsed,
            "shard0-batcher;<idle> 2\nshard0-batcher;serve.batch;serve.infer 5\n"
        );
        // Logs without samples collapse to nothing, not an error.
        assert_eq!(collapsed_profile(&sample_events()).expect("empty"), "");
    }

    #[test]
    fn export_is_deterministic_for_identical_inputs() {
        let a = chrome_trace(&sample_events()).expect("export");
        let b = chrome_trace(&sample_events()).expect("export");
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_lines_are_an_error_but_unknown_events_are_not() {
        assert!(chrome_trace("this is not json\n").is_err());
        let future = r#"{"ev":"hologram","t_ns":1}"#.to_string() + "\n";
        let json = chrome_trace(&future).expect("unknown event kinds are skipped");
        assert!(json.contains("traceEvents"));
    }
}

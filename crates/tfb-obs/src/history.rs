//! Cross-run observability: the append-only run-history store and the
//! diff / trend / gate analyses over it.
//!
//! A single run's manifest (`tfb-obs/v1`, see [`crate::manifest`]) answers
//! "what happened"; this module answers "what *changed*". The store is a
//! directory (`.tfb-history/` by default) of content-addressed manifest
//! blobs plus an `index.jsonl` of one line per recorded run:
//!
//! ```text
//! .tfb-history/
//!   index.jsonl                 # {"id": "…", "t_ms": …, "config_hash": …}
//!   manifests/<fnv1a-of-bytes>.json
//! ```
//!
//! Blobs are keyed by the FNV-1a hash of their exact bytes, so appending
//! the same manifest twice stores one blob but two index lines (a re-run
//! is a new observation of the same content). The index is append-only:
//! nothing in this module ever rewrites or truncates it.
//!
//! # The gate's noise model
//!
//! Wall-clock numbers from CI runners are noisy in exactly one direction:
//! interference makes runs *slower*, never faster. Following rebar's
//! lead, the gate therefore compares the candidate against the **minimum**
//! across K baseline runs for every resource measure (wall time, per-phase
//! totals, peak RSS, allocation counters) — the min is the best available
//! estimate of the true cost. Accuracy metrics (MAE, MSE, …) are
//! deterministic given a seed, so noise is re-run-to-re-run variation in
//! environment, not direction-biased; the gate uses the **median** across
//! baselines and a separate (much tighter) tolerance. Phases whose
//! baseline total is under a ~10µs noise floor are skipped entirely —
//! percentage deltas of near-zero timings are meaningless. Health
//! regressions (NaN or diverged cells in the candidate) fail the gate
//! unconditionally: there is no tolerance for wrong.

use crate::manifest::{
    HealthSummary, HistSummary, Manifest, MeasurementRow, MetricRow, PhaseRow, SloSummary,
    TraceExemplar,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tfb_json::JsonValue;

/// Phase totals below this are skipped by the gate: percentage deltas of
/// near-zero timings are pure noise.
pub const PHASE_NOISE_FLOOR_NS: u64 = 10_000;

/// A manifest parsed back from JSON, plus any forward-compat warnings
/// (unknown schema version, unrecognized fields) encountered on the way.
#[derive(Debug, Clone)]
pub struct ParsedManifest {
    /// The reconstructed manifest.
    pub manifest: Manifest,
    /// Human-readable warnings; empty for a clean `tfb-obs/v1` document.
    pub warnings: Vec<String>,
}

/// Parses a manifest JSON document (as written by [`Manifest::to_json`])
/// back into a [`Manifest`].
///
/// Schema-versioned: the `schema` field must start with `tfb-obs/`.
/// Anything newer than `v1` — a different version suffix, or top-level
/// fields this build does not know — parses best-effort with a warning
/// instead of an error, so a gate binary from yesterday can still read a
/// history written by tomorrow's recorder.
pub fn parse_manifest(text: &str) -> Result<ParsedManifest, String> {
    let root = JsonValue::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
    let mut warnings = Vec::new();
    let schema = root
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("manifest has no \"schema\" field")?;
    if !schema.starts_with("tfb-obs/") {
        return Err(format!("unknown manifest schema {schema:?}"));
    }
    if schema != "tfb-obs/v1" {
        warnings.push(format!(
            "manifest schema is {schema:?} (this build understands tfb-obs/v1); parsing best-effort"
        ));
    }
    const KNOWN: [&str; 15] = [
        "schema",
        "meta",
        "cores",
        "wall_ns",
        "peak_rss_bytes",
        "events_path",
        "phases",
        "counters",
        "gauges",
        "histograms",
        "metrics",
        "measurements",
        "slo",
        "exemplars",
        "flight",
    ];
    for (key, _) in root.as_object().ok_or("manifest root is not an object")? {
        if !KNOWN.contains(&key.as_str()) && key != "health" {
            warnings.push(format!("ignoring unknown manifest field {key:?}"));
        }
    }
    let mut m = Manifest {
        cores: root.get("cores").and_then(|v| v.as_usize()).unwrap_or(1),
        wall_ns: get_u64(&root, "wall_ns").unwrap_or(0),
        peak_rss_bytes: match root.get("peak_rss_bytes") {
            Some(JsonValue::Null) | None => None,
            Some(v) => v.as_f64().map(|n| n as u64),
        },
        events_path: root
            .get("events_path")
            .and_then(|v| v.as_str())
            .map(str::to_string),
        ..Manifest::default()
    };
    if let Some(fields) = root.get("meta").and_then(|v| v.as_object()) {
        for (k, v) in fields {
            m.meta
                .push((k.clone(), v.as_str().unwrap_or_default().to_string()));
        }
    }
    if let Some(items) = root.get("phases").and_then(|v| v.as_array()) {
        for p in items {
            m.phases.push(PhaseRow {
                path: get_str(p, "path"),
                dataset: get_str(p, "dataset"),
                method: get_str(p, "method"),
                count: get_u64(p, "count").unwrap_or(0),
                total_ns: get_u64(p, "total_ns").unwrap_or(0),
                min_ns: get_u64(p, "min_ns").unwrap_or(0),
                max_ns: get_u64(p, "max_ns").unwrap_or(0),
            });
        }
    }
    if let Some(fields) = root.get("counters").and_then(|v| v.as_object()) {
        for (k, v) in fields {
            m.counters.push((k.clone(), get_u64(v, "").unwrap_or(0)));
        }
    }
    if let Some(fields) = root.get("gauges").and_then(|v| v.as_object()) {
        for (k, v) in fields {
            m.gauges.push((k.clone(), num_or_nan(v)));
        }
    }
    if let Some(fields) = root.get("histograms").and_then(|v| v.as_object()) {
        for (k, v) in fields {
            m.histograms.push(parse_hist(k.clone(), v));
        }
    }
    if let Some(items) = root.get("metrics").and_then(|v| v.as_array()) {
        for row in items {
            m.metrics.push(MetricRow {
                dataset: get_str(row, "dataset"),
                method: get_str(row, "method"),
                horizon: row.get("horizon").and_then(|v| v.as_usize()).unwrap_or(0),
                name: get_str(row, "name"),
                value: row.get("value").map(num_or_nan).unwrap_or(f64::NAN),
            });
        }
    }
    if let Some(items) = root.get("measurements").and_then(|v| v.as_array()) {
        for row in items {
            m.measurements.push(MeasurementRow {
                name: get_str(row, "name"),
                quantity: get_str(row, "quantity"),
                unit: get_str(row, "unit"),
                iters: get_u64(row, "iters").unwrap_or(0),
                min: row.get("min").map(num_or_nan).unwrap_or(f64::NAN),
                median: row.get("median").map(num_or_nan).unwrap_or(f64::NAN),
                mean: row.get("mean").map(num_or_nan).unwrap_or(f64::NAN),
                stddev: row.get("stddev").map(num_or_nan).unwrap_or(f64::NAN),
                suite: get_str(row, "suite"),
                engine: get_str(row, "engine"),
                dataset: get_str(row, "dataset"),
                method: get_str(row, "method"),
                characteristic: get_str(row, "characteristic"),
                horizon: get_u64(row, "horizon").unwrap_or(0),
            });
        }
    }
    if let Some(slo) = root.get("slo") {
        m.slo = Some(SloSummary {
            threshold_ms: slo.get("threshold_ms").map(num_or_nan).unwrap_or(f64::NAN),
            objective: slo.get("objective").map(num_or_nan).unwrap_or(f64::NAN),
            total: get_u64(slo, "total").unwrap_or(0),
            breaches: get_u64(slo, "breaches").unwrap_or(0),
            burn_rate_1m: slo.get("burn_rate_1m").map(num_or_nan).unwrap_or(f64::NAN),
            burn_rate_5m: slo.get("burn_rate_5m").map(num_or_nan).unwrap_or(f64::NAN),
        });
    }
    if let Some(items) = root.get("exemplars").and_then(|v| v.as_array()) {
        for e in items {
            let mut phases = Vec::new();
            if let Some(fields) = e.get("phases").and_then(|v| v.as_object()) {
                for (k, v) in fields {
                    phases.push((k.clone(), get_u64(v, "").unwrap_or(0)));
                }
            }
            m.exemplars.push(TraceExemplar {
                trace_id: get_str(e, "trace_id"),
                total_ns: get_u64(e, "total_ns").unwrap_or(0),
                batch_size: get_u64(e, "batch_size").unwrap_or(0),
                phases,
            });
        }
    }
    if let Some(flight) = root.get("flight") {
        m.flight = Some(crate::manifest::FlightSummary {
            armed: flight
                .get("armed")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            dumps: get_u64(flight, "dumps").unwrap_or(0),
            suppressed: get_u64(flight, "suppressed").unwrap_or(0),
            last_reason: get_str(flight, "last_reason"),
        });
    }
    if let Some(health) = root.get("health") {
        let cells = |key: &str| -> Vec<String> {
            health
                .get(key)
                .and_then(|v| v.as_array())
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|c| c.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut grad_norms = Vec::new();
        if let Some(fields) = health.get("grad_norms").and_then(|v| v.as_object()) {
            for (k, v) in fields {
                grad_norms.push((k.clone(), parse_hist(k.clone(), v)));
            }
        }
        m.health = HealthSummary {
            nan_cells: cells("nan_cells"),
            diverged_cells: cells("diverged_cells"),
            aborted_cells: cells("aborted_cells"),
            grad_norms,
        };
    }
    Ok(ParsedManifest {
        manifest: m,
        warnings,
    })
}

fn get_str(v: &JsonValue, key: &str) -> String {
    v.get(key)
        .and_then(|s| s.as_str())
        .unwrap_or_default()
        .to_string()
}

/// `v[key]` as u64 ("" means `v` itself) — exact for anything a real run
/// produces (< 2^53 ns is ~104 days of wall time).
fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    let v = if key.is_empty() { Some(v) } else { v.get(key) };
    v.and_then(|n| n.as_f64()).map(|n| n as u64)
}

/// Numeric payload with `null` mapped back to NaN (the writer serializes
/// non-finite values as `null`).
fn num_or_nan(v: &JsonValue) -> f64 {
    match v {
        JsonValue::Null => f64::NAN,
        other => other.as_f64().unwrap_or(f64::NAN),
    }
}

fn parse_hist(name: String, v: &JsonValue) -> HistSummary {
    let f = |key: &str| v.get(key).map(num_or_nan).unwrap_or(f64::NAN);
    HistSummary {
        name,
        count: v.get("count").and_then(|n| n.as_usize()).unwrap_or(0),
        mean: f("mean"),
        min: f("min"),
        max: f("max"),
        p50: f("p50"),
        p90: f("p90"),
        p99: f("p99"),
    }
}

/// One line of the history index: where a recorded run's manifest lives
/// and enough provenance to select baselines without reading every blob.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Position in the index (0-based, append order).
    pub seq: usize,
    /// Content address: FNV-1a of the manifest's exact bytes.
    pub id: String,
    /// Unix timestamp in milliseconds when the entry was appended.
    pub timestamp_ms: u64,
    /// The run's `meta.config_hash` ("" when absent).
    pub config_hash: String,
    /// The run's `meta.git_rev` ("" when absent).
    pub git_rev: String,
    /// Cores available to the run.
    pub cores: usize,
    /// The run's wall time.
    pub wall_ns: u64,
    /// Blob path relative to the history root.
    pub path: String,
}

impl HistoryEntry {
    fn to_jsonl(&self) -> String {
        let obj = JsonValue::Object(vec![
            ("id".into(), JsonValue::String(self.id.clone())),
            ("t_ms".into(), JsonValue::Number(self.timestamp_ms as f64)),
            (
                "config_hash".into(),
                JsonValue::String(self.config_hash.clone()),
            ),
            ("git_rev".into(), JsonValue::String(self.git_rev.clone())),
            ("cores".into(), JsonValue::Number(self.cores as f64)),
            ("wall_ns".into(), JsonValue::Number(self.wall_ns as f64)),
            ("path".into(), JsonValue::String(self.path.clone())),
        ]);
        obj.compact()
    }

    fn from_jsonl(seq: usize, line: &str) -> Result<HistoryEntry, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("index line {}: {e}", seq + 1))?;
        Ok(HistoryEntry {
            seq,
            id: get_str(&v, "id"),
            timestamp_ms: get_u64(&v, "t_ms").unwrap_or(0),
            config_hash: get_str(&v, "config_hash"),
            git_rev: get_str(&v, "git_rev"),
            cores: v.get("cores").and_then(|n| n.as_usize()).unwrap_or(0),
            wall_ns: get_u64(&v, "wall_ns").unwrap_or(0),
            path: get_str(&v, "path"),
        })
    }
}

/// The append-only run-history store.
pub struct RunHistory {
    root: PathBuf,
    entries: Vec<HistoryEntry>,
}

impl RunHistory {
    /// Opens (creating if needed) the history at `root` and loads its
    /// index. Unparseable index lines are an error — the index is
    /// machine-written, so corruption should be loud.
    pub fn open(root: &Path) -> Result<RunHistory, String> {
        fs::create_dir_all(root.join("manifests"))
            .map_err(|e| format!("cannot create history dir {}: {e}", root.display()))?;
        let index = root.join("index.jsonl");
        let mut entries = Vec::new();
        if index.exists() {
            let text = fs::read_to_string(&index)
                .map_err(|e| format!("cannot read {}: {e}", index.display()))?;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                entries.push(HistoryEntry::from_jsonl(i, line)?);
            }
        }
        Ok(RunHistory {
            root: root.to_path_buf(),
            entries,
        })
    }

    /// The history's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All index entries, oldest first.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Appends a manifest (as its canonical JSON bytes).
    pub fn append(&mut self, manifest: &Manifest) -> Result<HistoryEntry, String> {
        self.append_bytes(&manifest.to_json(), manifest)
    }

    /// Appends a manifest from its JSON text (e.g. a `run.manifest.json`
    /// on disk), validating it first.
    pub fn append_json(&mut self, json: &str) -> Result<HistoryEntry, String> {
        let parsed = parse_manifest(json)?;
        self.append_bytes(json, &parsed.manifest)
    }

    fn append_bytes(&mut self, json: &str, manifest: &Manifest) -> Result<HistoryEntry, String> {
        let id = crate::fnv1a_hex(json.as_bytes());
        let rel = format!("manifests/{id}.json");
        let blob = self.root.join(&rel);
        if !blob.exists() {
            fs::write(&blob, json).map_err(|e| format!("cannot write {}: {e}", blob.display()))?;
        }
        let entry = HistoryEntry {
            seq: self.entries.len(),
            id,
            timestamp_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            config_hash: manifest.meta_value("config_hash").unwrap_or("").to_string(),
            git_rev: manifest.meta_value("git_rev").unwrap_or("").to_string(),
            cores: manifest.cores,
            wall_ns: manifest.wall_ns,
            path: rel,
        };
        let index = self.root.join("index.jsonl");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&index)
            .map_err(|e| format!("cannot open {}: {e}", index.display()))?;
        writeln!(f, "{}", entry.to_jsonl())
            .map_err(|e| format!("cannot append to {}: {e}", index.display()))?;
        self.entries.push(entry.clone());
        Ok(entry)
    }

    /// Loads and parses the manifest blob behind an index entry.
    pub fn load(&self, entry: &HistoryEntry) -> Result<ParsedManifest, String> {
        let path = self.root.join(&entry.path);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read manifest blob {}: {e}", path.display()))?;
        parse_manifest(&text)
    }

    /// Resolves a run selector: `first`, `last`, a 0-based index, or a
    /// (prefix of a) content id.
    pub fn resolve(&self, selector: &str) -> Option<&HistoryEntry> {
        match selector {
            "first" => self.entries.first(),
            "last" => self.entries.last(),
            s => {
                if let Ok(seq) = s.parse::<usize>() {
                    return self.entries.get(seq);
                }
                // Id prefix: newest match wins.
                self.entries.iter().rev().find(|e| e.id.starts_with(s))
            }
        }
    }
}

/// One postmortem bundle, as recorded in the append-only
/// `<root>/postmortems.jsonl` index written by [`crate::flight::dump`].
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemEntry {
    /// Monotonic dump sequence number within the process that wrote it.
    pub seq: u64,
    /// Content id of the bundle (FNV-1a of the manifest bytes).
    pub id: String,
    /// What tripped the dump (`slo-burn-rate`, `serve-shed`, `panic: …`).
    pub reason: String,
    /// Number of ring events captured in the bundle.
    pub events: u64,
    /// Bundle directory, relative to the history root.
    pub path: String,
}

impl PostmortemEntry {
    /// Absolute bundle directory under `root`.
    pub fn dir(&self, root: &Path) -> PathBuf {
        root.join(&self.path)
    }
}

/// Loads the postmortem index under a history root. A missing index is an
/// empty list (no incidents yet), not an error.
pub fn load_postmortems(root: &Path) -> Result<Vec<PostmortemEntry>, String> {
    let index = root.join("postmortems.jsonl");
    let text = match fs::read_to_string(&index) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", index.display())),
    };
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line)
            .map_err(|e| format!("{}:{}: not valid JSON: {e}", index.display(), lineno + 1))?;
        out.push(PostmortemEntry {
            seq: get_u64(&v, "seq").unwrap_or(0),
            id: get_str(&v, "id"),
            reason: get_str(&v, "reason"),
            events: get_u64(&v, "events").unwrap_or(0),
            path: get_str(&v, "path"),
        });
    }
    Ok(out)
}

/// Resolves a postmortem selector over index order: `first`, `last`, a
/// 0-based index, or a (prefix of a) bundle id — newest match wins, same
/// semantics as [`RunHistory::resolve`].
pub fn resolve_postmortem<'a>(
    entries: &'a [PostmortemEntry],
    selector: &str,
) -> Option<&'a PostmortemEntry> {
    match selector {
        "first" => entries.first(),
        "last" => entries.last(),
        s => {
            if let Ok(seq) = s.parse::<usize>() {
                return entries.get(seq);
            }
            entries.iter().rev().find(|e| e.id.starts_with(s))
        }
    }
}

/// What a diff row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Total run wall time.
    WallTime,
    /// Peak resident set size.
    PeakRss,
    /// One span path's total time (summed over its dataset/method cells).
    Phase,
    /// One counter's total.
    Counter,
    /// One per-cell accuracy metric.
    Metric,
    /// One suite-harness measurement (median across its iters).
    Measurement,
}

impl DiffKind {
    /// Short display tag.
    pub fn tag(self) -> &'static str {
        match self {
            DiffKind::WallTime => "wall",
            DiffKind::PeakRss => "rss",
            DiffKind::Phase => "phase",
            DiffKind::Counter => "counter",
            DiffKind::Metric => "metric",
            DiffKind::Measurement => "meas",
        }
    }
}

/// One compared quantity between two manifests. Every kind here is
/// lower-is-better, so a positive delta is a regression — except
/// [`DiffKind::Measurement`] rows whose unit is a rate (e.g. `req/s`),
/// which are informational in the diff and excluded from the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// What is being compared.
    pub kind: DiffKind,
    /// Display key (phase path, counter name, `dataset/method h=H name`).
    pub name: String,
    /// Baseline value (`None` = not measured, e.g. RSS off Linux).
    pub base: Option<f64>,
    /// Candidate value.
    pub new: Option<f64>,
}

impl DiffRow {
    /// Relative change in percent; `None` when either side is missing or
    /// the baseline is zero/non-finite.
    pub fn delta_pct(&self) -> Option<f64> {
        let (b, n) = (self.base?, self.new?);
        if !b.is_finite() || !n.is_finite() || b == 0.0 {
            return None;
        }
        Some((n - b) / b * 100.0)
    }
}

/// Per-path phase totals, summed over dataset/method cells.
fn phase_totals(m: &Manifest) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for p in &m.phases {
        *totals.entry(p.path.clone()).or_insert(0) += p.total_ns;
    }
    totals
}

/// Stable display key for a metric row.
fn metric_key(m: &MetricRow) -> String {
    format!("{}/{} h={} {}", m.dataset, m.method, m.horizon, m.name)
}

/// Stable display key for a suite-harness measurement.
fn measurement_key(m: &MeasurementRow) -> String {
    format!("{}/{}", m.name, m.quantity)
}

/// Whether a measurement's unit denotes time — the only class of
/// measurement the gate treats as a (one-directionally noisy) resource.
fn is_time_unit(unit: &str) -> bool {
    matches!(
        unit.split('/').next().unwrap_or(""),
        "ns" | "us" | "ms" | "s"
    )
}

/// A measurement's time-unit value expressed in nanoseconds (for the
/// gate's noise floor); `None` for non-time units.
fn time_unit_ns(unit: &str, value: f64) -> Option<f64> {
    let scale = match unit.split('/').next().unwrap_or("") {
        "ns" => 1.0,
        "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// Compares two manifests: wall time, peak RSS, per-path phase totals,
/// counters, and accuracy metrics. Rows are sorted by regression
/// magnitude — worst regression first, then improvements, then rows with
/// no computable delta.
pub fn diff_manifests(base: &Manifest, new: &Manifest) -> Vec<DiffRow> {
    let mut rows = vec![
        DiffRow {
            kind: DiffKind::WallTime,
            name: "wall_ns".into(),
            base: Some(base.wall_ns as f64),
            new: Some(new.wall_ns as f64),
        },
        DiffRow {
            kind: DiffKind::PeakRss,
            name: "peak_rss_bytes".into(),
            base: base.peak_rss_bytes.map(|b| b as f64),
            new: new.peak_rss_bytes.map(|b| b as f64),
        },
    ];
    let (bp, np) = (phase_totals(base), phase_totals(new));
    for path in bp
        .keys()
        .chain(np.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        rows.push(DiffRow {
            kind: DiffKind::Phase,
            name: path.to_string(),
            base: bp.get(path.as_str()).map(|&v| v as f64),
            new: np.get(path.as_str()).map(|&v| v as f64),
        });
    }
    let bc: BTreeMap<&str, u64> = base
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let nc: BTreeMap<&str, u64> = new.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for name in bc
        .keys()
        .chain(nc.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        rows.push(DiffRow {
            kind: DiffKind::Counter,
            name: name.to_string(),
            base: bc.get(*name).map(|&v| v as f64),
            new: nc.get(*name).map(|&v| v as f64),
        });
    }
    let bm: BTreeMap<String, f64> = base
        .metrics
        .iter()
        .map(|m| (metric_key(m), m.value))
        .collect();
    let nm: BTreeMap<String, f64> = new
        .metrics
        .iter()
        .map(|m| (metric_key(m), m.value))
        .collect();
    for key in bm
        .keys()
        .chain(nm.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        rows.push(DiffRow {
            kind: DiffKind::Metric,
            name: key.to_string(),
            base: bm.get(key.as_str()).copied(),
            new: nm.get(key.as_str()).copied(),
        });
    }
    let bmm: BTreeMap<String, f64> = base
        .measurements
        .iter()
        .map(|m| (measurement_key(m), m.median))
        .collect();
    let nmm: BTreeMap<String, f64> = new
        .measurements
        .iter()
        .map(|m| (measurement_key(m), m.median))
        .collect();
    for key in bmm
        .keys()
        .chain(nmm.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        rows.push(DiffRow {
            kind: DiffKind::Measurement,
            name: key.to_string(),
            base: bmm.get(key.as_str()).copied(),
            new: nmm.get(key.as_str()).copied(),
        });
    }
    // Worst regression first; missing deltas sink to the bottom.
    rows.sort_by(|a, b| {
        let (da, db) = (a.delta_pct(), b.delta_pct());
        match (da, db) {
            (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.name.cmp(&b.name),
        }
    });
    rows
}

/// Formats one optional measurement ("n/a" when absent — never 0, which
/// would read as a fake −100% improvement).
fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 9.0e15 {
                format!("{}", v as i64)
            } else {
                format!("{v:.6}")
            }
        }
        _ => "n/a".to_string(),
    }
}

/// Renders a diff as an aligned text table.
pub fn render_diff(rows: &[DiffRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<44} {:>16} {:>16} {:>9}",
        "kind", "name", "base", "new", "delta"
    );
    for r in rows {
        let delta = match r.delta_pct() {
            Some(d) => format!("{d:+.1}%"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<8} {:<44} {:>16} {:>16} {:>9}",
            r.kind.tag(),
            r.name,
            fmt_opt(r.base),
            fmt_opt(r.new),
            delta
        );
    }
    out
}

/// Separate tolerances for the gate's quantity classes, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTolerances {
    /// Wall time and per-phase totals.
    pub wall_pct: f64,
    /// Peak RSS.
    pub rss_pct: f64,
    /// Allocation counters (names containing `alloc`).
    pub alloc_pct: f64,
    /// Accuracy metrics (MAE, MSE, …) — deterministic, so much tighter.
    pub metric_pct: f64,
}

impl Default for GateTolerances {
    fn default() -> GateTolerances {
        GateTolerances {
            wall_pct: 10.0,
            rss_pct: 10.0,
            alloc_pct: 10.0,
            metric_pct: 5.0,
        }
    }
}

/// One gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// What was checked (same keys as the diff).
    pub name: String,
    /// Baseline aggregate (min or median across the K baselines).
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Allowed regression in percent.
    pub tol_pct: f64,
    /// Observed change in percent.
    pub delta_pct: f64,
    /// Whether the check failed.
    pub failed: bool,
}

/// The gate's outcome: every check it ran and the failures among them.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every comparison performed.
    pub checks: Vec<GateCheck>,
    /// Human-readable failure lines (health failures included).
    pub failures: Vec<String>,
    /// How many baseline runs the aggregates were taken over.
    pub baseline_runs: usize,
}

impl GateReport {
    /// True when nothing regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn median(xs: &mut Vec<f64>) -> Option<f64> {
    xs.retain(|v| v.is_finite());
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

/// Runs the noise-aware regression gate: `candidate` against min/median
/// aggregates over `baselines` (see the module docs for the noise model).
/// Empty `baselines` yields a report that only runs the health checks.
pub fn gate(baselines: &[&Manifest], candidate: &Manifest, tol: &GateTolerances) -> GateReport {
    let mut report = GateReport {
        baseline_runs: baselines.len(),
        ..GateReport::default()
    };
    let check = |report: &mut GateReport, name: String, base: f64, cand: f64, tol_pct: f64| {
        if !base.is_finite() || base <= 0.0 || !cand.is_finite() {
            return;
        }
        let delta_pct = (cand - base) / base * 100.0;
        let failed = delta_pct > tol_pct;
        if failed {
            report.failures.push(format!(
                "{name}: {cand:.0} vs baseline {base:.0} ({delta_pct:+.1}% > +{tol_pct:.0}% tolerance)"
            ));
        }
        report.checks.push(GateCheck {
            name,
            baseline: base,
            candidate: cand,
            tol_pct,
            delta_pct,
            failed,
        });
    };
    if !baselines.is_empty() {
        // Wall time: min across baselines (interference only slows runs).
        let wall_min = baselines.iter().map(|m| m.wall_ns).min().unwrap_or(0);
        check(
            &mut report,
            "wall_ns".into(),
            wall_min as f64,
            candidate.wall_ns as f64,
            tol.wall_pct,
        );
        // Peak RSS: min across baselines that measured it; skip entirely
        // when unmeasured on either side (never treat None as 0).
        let rss_min = baselines.iter().filter_map(|m| m.peak_rss_bytes).min();
        if let (Some(b), Some(c)) = (rss_min, candidate.peak_rss_bytes) {
            check(
                &mut report,
                "peak_rss_bytes".into(),
                b as f64,
                c as f64,
                tol.rss_pct,
            );
        }
        // Per-path phase totals: min across baselines, noise floor applied.
        let base_phases: Vec<BTreeMap<String, u64>> =
            baselines.iter().map(|m| phase_totals(m)).collect();
        let cand_phases = phase_totals(candidate);
        for (path, &cand_total) in &cand_phases {
            let mins: Vec<u64> = base_phases
                .iter()
                .filter_map(|p| p.get(path).copied())
                .collect();
            let Some(&base_min) = mins.iter().min() else {
                continue; // New phase: nothing to compare against.
            };
            if base_min < PHASE_NOISE_FLOOR_NS {
                continue;
            }
            check(
                &mut report,
                format!("phase {path}"),
                base_min as f64,
                cand_total as f64,
                tol.wall_pct,
            );
        }
        // Allocation counters: min across baselines.
        for (name, cand_v) in &candidate.counters {
            if !name.contains("alloc") {
                continue;
            }
            let mins: Vec<u64> = baselines
                .iter()
                .filter_map(|m| m.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v))
                .collect();
            if let Some(&base_min) = mins.iter().min() {
                check(
                    &mut report,
                    format!("counter {name}"),
                    base_min as f64,
                    *cand_v as f64,
                    tol.alloc_pct,
                );
            }
        }
        // Suite-harness measurements: only time-unit quantities are
        // gated (rates and scores have their own channels — throughput
        // is higher-is-better, accuracy flows through `metrics`). The
        // candidate's min-over-iters is compared against the min across
        // baselines' mins — the same one-directional noise model as
        // wall time — with the phase noise floor applied.
        for row in &candidate.measurements {
            if !is_time_unit(&row.unit) {
                continue;
            }
            let key = measurement_key(row);
            let mins: Vec<f64> = baselines
                .iter()
                .flat_map(|m| &m.measurements)
                .filter(|b| measurement_key(b) == key && b.unit == row.unit)
                .map(|b| b.min)
                .filter(|v| v.is_finite())
                .collect();
            let Some(base_min) = mins.iter().copied().reduce(f64::min) else {
                continue; // New cell: nothing to compare against.
            };
            match time_unit_ns(&row.unit, base_min) {
                Some(ns) if ns >= PHASE_NOISE_FLOOR_NS as f64 => {}
                _ => continue,
            }
            check(
                &mut report,
                format!("meas {key}"),
                base_min,
                row.min,
                tol.wall_pct,
            );
        }
        // Accuracy metrics: median across baselines, tight tolerance.
        let mut base_metrics: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for m in baselines {
            for row in &m.metrics {
                base_metrics
                    .entry(metric_key(row))
                    .or_default()
                    .push(row.value);
            }
        }
        for row in &candidate.metrics {
            let key = metric_key(row);
            if let Some(values) = base_metrics.get_mut(&key) {
                if let Some(med) = median(values) {
                    if med > 0.0 && row.value.is_finite() {
                        let delta_pct = (row.value - med) / med * 100.0;
                        let failed = delta_pct > tol.metric_pct;
                        if failed {
                            report.failures.push(format!(
                                "metric {key}: {:.6} vs baseline median {med:.6} ({delta_pct:+.2}% > +{:.1}% tolerance)",
                                row.value, tol.metric_pct
                            ));
                        }
                        report.checks.push(GateCheck {
                            name: format!("metric {key}"),
                            baseline: med,
                            candidate: row.value,
                            tol_pct: tol.metric_pct,
                            delta_pct,
                            failed,
                        });
                    }
                }
            }
        }
    }
    // Health: no tolerance for wrong.
    for cell in &candidate.health.nan_cells {
        report.failures.push(format!(
            "health: cell {cell} hit a non-finite loss or forecast"
        ));
    }
    for cell in &candidate.health.diverged_cells {
        report.failures.push(format!(
            "health: cell {cell} aborted by the divergence detector"
        ));
    }
    report
}

/// Renders a numeric series as a sparkline (8-level block characters;
/// non-finite values render as spaces). A flat series renders mid-level.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span <= 0.0 {
                LEVELS[3]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_manifest(wall: u64, mae: f64) -> Manifest {
        Manifest {
            meta: vec![
                ("config_hash".into(), "cfg".into()),
                ("git_rev".into(), "deadbeef".into()),
            ],
            cores: 4,
            wall_ns: wall,
            peak_rss_bytes: Some(1 << 20),
            events_path: None,
            phases: vec![PhaseRow {
                path: "job.eval".into(),
                dataset: "ILI".into(),
                method: "LR".into(),
                count: 1,
                total_ns: wall / 2,
                min_ns: wall / 2,
                max_ns: wall / 2,
            }],
            counters: vec![("alloc/bytes".into(), 1000)],
            gauges: vec![],
            histograms: vec![],
            metrics: vec![MetricRow {
                dataset: "ILI".into(),
                method: "LR".into(),
                horizon: 24,
                name: "mae".into(),
                value: mae,
            }],
            measurements: vec![],
            slo: None,
            exemplars: vec![],
            flight: None,
            health: HealthSummary::default(),
        }
    }

    fn meas(name: &str, quantity: &str, unit: &str, min: f64) -> MeasurementRow {
        MeasurementRow {
            name: name.into(),
            quantity: quantity.into(),
            unit: unit.into(),
            iters: 3,
            min,
            median: min * 1.1,
            mean: min * 1.15,
            stddev: min * 0.05,
            suite: "eval/etth1".into(),
            engine: "eval".into(),
            dataset: "ETTh1".into(),
            method: "LR".into(),
            characteristic: "trend".into(),
            horizon: 24,
        }
    }

    #[test]
    fn diff_sorts_worst_regression_first() {
        let base = mini_manifest(1_000_000, 1.0);
        let mut new = mini_manifest(1_100_000, 1.0);
        new.phases[0].total_ns = 2_000_000; // +300% on the phase
        let rows = diff_manifests(&base, &new);
        assert_eq!(rows[0].kind, DiffKind::Phase);
        assert!(rows[0].delta_pct().unwrap() > 200.0);
        let rendered = render_diff(&rows);
        assert!(rendered.contains("job.eval"), "{rendered}");
    }

    #[test]
    fn diff_renders_missing_rss_as_na() {
        let mut base = mini_manifest(1_000_000, 1.0);
        base.peak_rss_bytes = None;
        let new = mini_manifest(1_000_000, 1.0);
        let rows = diff_manifests(&base, &new);
        let rss = rows
            .iter()
            .find(|r| r.kind == DiffKind::PeakRss)
            .expect("rss row present");
        assert_eq!(rss.delta_pct(), None, "None must not read as 0");
        assert!(render_diff(&rows).contains("n/a"));
    }

    #[test]
    fn gate_min_of_k_absorbs_baseline_noise() {
        // Three noisy baselines; candidate matches the fastest one. A
        // mean- or last-based gate would flag this; min-based passes.
        let b1 = mini_manifest(1_500_000, 1.0);
        let b2 = mini_manifest(1_000_000, 1.0);
        let b3 = mini_manifest(1_400_000, 1.0);
        let cand = mini_manifest(1_050_000, 1.0);
        let report = gate(&[&b1, &b2, &b3], &cand, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.baseline_runs, 3);
    }

    #[test]
    fn gate_catches_wall_and_metric_regressions() {
        let base = mini_manifest(1_000_000, 1.0);
        let mut cand = mini_manifest(1_600_000, 1.10);
        cand.phases[0].total_ns = 800_000;
        let tol = GateTolerances {
            wall_pct: 20.0,
            rss_pct: 20.0,
            alloc_pct: 20.0,
            metric_pct: 5.0,
        };
        let report = gate(&[&base], &cand, &tol);
        assert!(!report.passed());
        let text = report.failures.join("\n");
        assert!(text.contains("wall_ns"), "{text}");
        assert!(text.contains("mae"), "{text}");
    }

    #[test]
    fn gate_fails_on_candidate_nan_cells() {
        let base = mini_manifest(1_000_000, 1.0);
        let mut cand = mini_manifest(1_000_000, 1.0);
        cand.health.nan_cells.push("ILI/MLP".into());
        let report = gate(&[&base], &cand, &GateTolerances::default());
        assert!(!report.passed());
        assert!(report.failures[0].contains("ILI/MLP"));
    }

    #[test]
    fn gate_skips_sub_noise_floor_phases() {
        let mut base = mini_manifest(1_000_000, 1.0);
        base.phases[0].total_ns = 500; // 0.5µs: pure noise
        let mut cand = mini_manifest(1_000_000, 1.0);
        cand.phases[0].total_ns = 5_000; // "10x regression" of nothing
        let report = gate(&[&base], &cand, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn measurements_round_trip_and_diff() {
        let mut base = mini_manifest(1_000_000, 1.0);
        base.measurements = vec![meas("eval/etth1/LR-h24", "wall", "ns", 1_000_000.0)];
        let json = base.to_json();
        let parsed = parse_manifest(&json).expect("parses");
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert_eq!(parsed.manifest.to_json(), json);

        let mut new = base.clone();
        new.measurements[0].median = 3_000_000.0;
        let rows = diff_manifests(&base, &new);
        let row = rows
            .iter()
            .find(|r| r.kind == DiffKind::Measurement)
            .expect("measurement row");
        assert_eq!(row.name, "eval/etth1/LR-h24/wall");
        assert!(row.delta_pct().unwrap() > 100.0);
    }

    #[test]
    fn gate_measurements_min_of_k_time_units_only() {
        // Noisy baselines: min-of-K absorbs the slow ones.
        let mut b1 = mini_manifest(1_000_000, 1.0);
        b1.measurements = vec![
            meas("eval/etth1/LR-h24", "infer", "us/window", 150.0),
            meas("serve/smoke/LR-h8", "throughput", "req/s", 3_000.0),
        ];
        let mut b2 = b1.clone();
        b2.measurements[0].min = 100.0;
        let mut cand = b1.clone();
        cand.measurements[0].min = 105.0; // within 10% of min-of-K (100)
        cand.measurements[1].min = 100.0; // throughput collapse: NOT gated
        let report = gate(&[&b1, &b2], &cand, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "meas eval/etth1/LR-h24/infer"));
        assert!(
            !report.checks.iter().any(|c| c.name.contains("throughput")),
            "rate units must not be gated as lower-is-better"
        );

        // A genuine regression beyond tolerance fails.
        cand.measurements[0].min = 200.0;
        let report = gate(&[&b1, &b2], &cand, &GateTolerances::default());
        assert!(!report.passed());
        assert!(report.failures[0].contains("eval/etth1/LR-h24/infer"));
    }

    #[test]
    fn gate_skips_sub_noise_floor_measurements() {
        let mut base = mini_manifest(1_000_000, 1.0);
        base.measurements = vec![meas("math/kernels/dot-16", "wall", "ns", 900.0)];
        let mut cand = base.clone();
        cand.measurements[0].min = 9_000.0; // "10x" of sub-floor noise
        let report = gate(&[&base], &cand, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn mixed_schema_histories_diff_and_gate() {
        // A pre-harness manifest (no measurements) next to a harness one
        // must diff and gate cleanly in both directions.
        let old = mini_manifest(1_000_000, 1.0);
        let mut new = mini_manifest(1_000_000, 1.0);
        new.measurements = vec![meas("eval/etth1/LR-h24", "wall", "ns", 1_000_000.0)];
        let rows = diff_manifests(&old, &new);
        let row = rows
            .iter()
            .find(|r| r.kind == DiffKind::Measurement)
            .expect("one-sided measurement row");
        assert_eq!(row.base, None);
        assert_eq!(row.delta_pct(), None);
        assert!(gate(&[&old], &new, &GateTolerances::default()).passed());
        assert!(gate(&[&new], &old, &GateTolerances::default()).passed());
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0, 8.0]).chars().count(), 4);
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s, "▁█");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn parse_round_trips_byte_identical() {
        let m = mini_manifest(123_456, 0.5);
        let json = m.to_json();
        let parsed = parse_manifest(&json).expect("parses");
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert_eq!(parsed.manifest.to_json(), json);
    }

    #[test]
    fn parse_round_trips_slo_and_exemplars_byte_identical() {
        let mut m = mini_manifest(123_456, 0.5);
        m.slo = Some(SloSummary {
            threshold_ms: 50.0,
            objective: 0.99,
            total: 200,
            breaches: 7,
            burn_rate_1m: 3.5,
            burn_rate_5m: 0.7,
        });
        m.exemplars = vec![TraceExemplar {
            trace_id: "0123456789abcdef".into(),
            total_ns: 81_000_000,
            batch_size: 5,
            phases: vec![("queue".into(), 500_000), ("infer".into(), 80_000_000)],
        }];
        let json = m.to_json();
        let parsed = parse_manifest(&json).expect("parses");
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert_eq!(parsed.manifest.to_json(), json);
    }

    #[test]
    fn unknown_manifest_fields_warn_but_parse() {
        let m = mini_manifest(123_456, 0.5);
        // A field a future recorder might add: old readers must warn, not
        // error — the same path pre-slo readers take on today's output.
        let json = m.to_json().replace(
            "  \"health\": {",
            "  \"frobnication\": {},\n  \"health\": {",
        );
        let parsed = parse_manifest(&json).expect("future field must not break parsing");
        assert!(
            parsed.warnings.iter().any(|w| w.contains("frobnication")),
            "{:?}",
            parsed.warnings
        );
    }

    #[test]
    fn resolve_selectors() {
        let dir = std::env::temp_dir().join(format!("tfb_hist_unit_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut h = RunHistory::open(&dir).expect("open");
        assert!(h.resolve("last").is_none());
        let e1 = h.append(&mini_manifest(1_000, 1.0)).expect("append");
        let e2 = h.append(&mini_manifest(2_000, 1.0)).expect("append");
        assert_eq!(h.resolve("first").unwrap().id, e1.id);
        assert_eq!(h.resolve("last").unwrap().id, e2.id);
        assert_eq!(h.resolve("1").unwrap().id, e2.id);
        assert_eq!(h.resolve(&e1.id[..8]).unwrap().id, e1.id);
        // Re-open sees both entries; same-content append dedups the blob.
        let h2 = RunHistory::open(&dir).expect("reopen");
        assert_eq!(h2.entries().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}

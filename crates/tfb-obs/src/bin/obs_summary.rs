//! `obs_summary` — renders a tfb-obs run manifest as a flamegraph-style
//! phase breakdown plus the top-N slowest (dataset, method) cells.
//!
//! ```text
//! obs_summary <manifest.json> [--top N]
//! ```
//!
//! Build with the `summarizer` feature:
//! `cargo run -p tfb-obs --features summarizer --bin obs_summary -- run.manifest.json`

use std::collections::BTreeMap;
use std::process::ExitCode;
use tfb_json::JsonValue;

struct PhaseRow {
    path: String,
    dataset: String,
    method: String,
    count: u64,
    total_ns: u64,
}

fn fmt_dur(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:8.2} s ")
    } else if s >= 1e-3 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{:8.2} us", s * 1e6)
    }
}

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac * width as f64).round() as usize).min(width);
    let mut out = String::new();
    for _ in 0..n {
        out.push('█');
    }
    for _ in n..width {
        out.push(' ');
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: obs_summary <manifest.json> [--top N]");
        return ExitCode::FAILURE;
    };
    let top_n: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_summary: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match JsonValue::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs_summary: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if doc.get("schema").and_then(JsonValue::as_str) != Some("tfb-obs/v1") {
        eprintln!("obs_summary: {path} is not a tfb-obs/v1 manifest");
        return ExitCode::FAILURE;
    }

    // --- Header. ------------------------------------------------------
    let wall_ns = doc
        .get("wall_ns")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u64;
    let cores = doc.get("cores").and_then(JsonValue::as_usize).unwrap_or(0);
    println!("run manifest: {path}");
    println!(
        "wall {} on {cores} core(s){}",
        fmt_dur(wall_ns).trim(),
        match doc.get("peak_rss_bytes").and_then(JsonValue::as_f64) {
            Some(b) => format!(", peak RSS {:.1} MiB", b / (1024.0 * 1024.0)),
            None => String::new(),
        }
    );
    if let Some(meta) = doc.get("meta").and_then(JsonValue::as_object) {
        for (k, v) in meta {
            if let Some(s) = v.as_str() {
                println!("  {k}: {s}");
            }
        }
    }

    // --- Phase rows. --------------------------------------------------
    let mut rows: Vec<PhaseRow> = Vec::new();
    if let Some(phases) = doc.get("phases").and_then(JsonValue::as_array) {
        for p in phases {
            rows.push(PhaseRow {
                path: p
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                dataset: p
                    .get("dataset")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                method: p
                    .get("method")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                count: p.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
                total_ns: p.get("total_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
            });
        }
    }
    if rows.is_empty() {
        println!("\n(no phases recorded)");
        return ExitCode::SUCCESS;
    }

    // --- Flamegraph-style breakdown: aggregate per path, indent by
    // nesting depth, bar scaled to the largest root. -------------------
    let mut by_path: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for r in &rows {
        let e = by_path.entry(r.path.clone()).or_insert((0, 0));
        e.0 += r.count;
        e.1 += r.total_ns;
    }
    let max_root = by_path
        .iter()
        .filter(|(p, _)| !p.contains('.'))
        .map(|(_, (_, total))| *total)
        .max()
        .unwrap_or(1)
        .max(1);
    println!("\nphase breakdown");
    for (p, (count, total)) in &by_path {
        let depth = p.matches('.').count();
        let label = p.rsplit('.').next().unwrap_or(p);
        let indent = "  ".repeat(depth);
        let name = format!("{indent}{label}");
        println!(
            "  {name:<28} {} {} {count:>7} span(s)",
            bar(*total as f64 / max_root as f64, 24),
            fmt_dur(*total)
        );
    }

    // --- Top-N slowest (dataset, method) cells: shallowest path per
    // cell so nested spans are not double-counted. ---------------------
    let mut cell_depth: BTreeMap<(String, String), usize> = BTreeMap::new();
    for r in &rows {
        if r.dataset.is_empty() && r.method.is_empty() {
            continue;
        }
        let key = (r.dataset.clone(), r.method.clone());
        let depth = r.path.matches('.').count();
        let e = cell_depth.entry(key).or_insert(depth);
        *e = (*e).min(depth);
    }
    let mut cells: BTreeMap<(String, String), u64> = BTreeMap::new();
    for r in &rows {
        let key = (r.dataset.clone(), r.method.clone());
        if cell_depth.get(&key) == Some(&r.path.matches('.').count()) {
            *cells.entry(key).or_insert(0) += r.total_ns;
        }
    }
    let mut cells: Vec<((String, String), u64)> = cells.into_iter().collect();
    cells.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if !cells.is_empty() {
        println!(
            "\ntop {} slowest (dataset, method) cells",
            top_n.min(cells.len())
        );
        for ((dataset, method), total) in cells.iter().take(top_n) {
            let label = match (dataset.is_empty(), method.is_empty()) {
                (false, false) => format!("{dataset} x {method}"),
                (false, true) => dataset.clone(),
                _ => method.clone(),
            };
            println!("  {label:<28} {}", fmt_dur(*total));
        }
    }

    // --- Counters, gauges, histograms. --------------------------------
    if let Some(counters) = doc.get("counters").and_then(JsonValue::as_object) {
        if !counters.is_empty() {
            println!("\ncounters");
            for (k, v) in counters {
                if let Some(n) = v.as_f64() {
                    println!("  {k:<36} {n:>16}");
                }
            }
        }
    }
    if let Some(gauges) = doc.get("gauges").and_then(JsonValue::as_object) {
        if !gauges.is_empty() {
            println!("\ngauges");
            for (k, v) in gauges {
                if let Some(n) = v.as_f64() {
                    println!("  {k:<36} {n:>16}");
                }
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(JsonValue::as_object) {
        if !hists.is_empty() {
            println!("\nhistograms (count / mean / p50 / p90 / p99 / max)");
            for (k, v) in hists {
                let f = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                println!(
                    "  {k:<28} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    f("count") as u64,
                    f("mean"),
                    f("p50"),
                    f("p90"),
                    f("p99"),
                    f("max"),
                );
            }
        }
    }
    ExitCode::SUCCESS
}

//! `obs_summary` — renders a tfb-obs run manifest as a flamegraph-style
//! phase breakdown plus the top-N slowest (dataset, method) cells.
//!
//! ```text
//! obs_summary <manifest.json> [--top N] [--compare BASE.json]
//! ```
//!
//! With `--compare` the summary is followed by a full diff against the
//! baseline manifest (worst regression first).
//!
//! Build with the `summarizer` feature:
//! `cargo run -p tfb-obs --features summarizer --bin obs_summary -- run.manifest.json`

use std::collections::BTreeMap;
use std::process::ExitCode;
use tfb_json::JsonValue;

struct PhaseRow {
    path: String,
    dataset: String,
    method: String,
    count: u64,
    total_ns: u64,
}

fn fmt_dur(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:8.2} s ")
    } else if s >= 1e-3 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{:8.2} us", s * 1e6)
    }
}

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac * width as f64).round() as usize).min(width);
    let mut out = String::new();
    for _ in 0..n {
        out.push('█');
    }
    for _ in n..width {
        out.push(' ');
    }
    out
}

/// Prints the manifest's `health` section when anything went wrong.
fn render_health(doc: &JsonValue) {
    let Some(health) = doc.get("health") else {
        return;
    };
    let cells = |key: &str| -> Vec<String> {
        health
            .get(key)
            .and_then(JsonValue::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    };
    let nan = cells("nan_cells");
    let diverged = cells("diverged_cells");
    let aborted = cells("aborted_cells");
    if nan.is_empty() && diverged.is_empty() && aborted.is_empty() {
        return;
    }
    println!("\nhealth");
    for (label, list) in [
        ("nan", &nan),
        ("diverged", &diverged),
        ("aborted", &aborted),
    ] {
        if !list.is_empty() {
            println!("  {label:<10} {}", list.join(", "));
        }
    }
}

/// Handles `--compare BASE.json`: renders a full diff (worst regression
/// first) of this manifest against the baseline. Returns false when the
/// baseline cannot be loaded.
fn render_compare(args: &[String], cand_text: &str) -> bool {
    let Some(base_path) = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
    else {
        return true;
    };
    let base_text = match std::fs::read_to_string(base_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_summary: cannot read {base_path}: {e}");
            return false;
        }
    };
    let load = |label: &str, text: &str| match tfb_obs::history::parse_manifest(text) {
        Ok(parsed) => {
            for w in &parsed.warnings {
                eprintln!("obs_summary: warning: {label}: {w}");
            }
            Some(parsed.manifest)
        }
        Err(e) => {
            eprintln!("obs_summary: {label}: {e}");
            None
        }
    };
    let (Some(base), Some(cand)) = (load(base_path, &base_text), load("manifest", cand_text))
    else {
        return false;
    };
    let rows = tfb_obs::history::diff_manifests(&base, &cand);
    println!("\ncomparison against {base_path} (worst regression first)");
    print!("{}", tfb_obs::history::render_diff(&rows));
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: obs_summary <manifest.json> [--top N] [--compare BASE.json]");
        return ExitCode::FAILURE;
    };
    let top_n: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_summary: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match JsonValue::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs_summary: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Accept any tfb-obs/* schema: newer manifests render best-effort
    // (the history parser warns about fields this version doesn't know).
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s.starts_with("tfb-obs/") => {
            if s != "tfb-obs/v1" {
                eprintln!("obs_summary: note: {path} is a {s} manifest, rendering best-effort");
            }
        }
        _ => {
            eprintln!("obs_summary: {path} is not a tfb-obs manifest");
            return ExitCode::FAILURE;
        }
    }

    // --- Header. ------------------------------------------------------
    let wall_ns = doc
        .get("wall_ns")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u64;
    let cores = doc.get("cores").and_then(JsonValue::as_usize).unwrap_or(0);
    println!("run manifest: {path}");
    // An unmeasured RSS (serialized as null off Linux) renders as "n/a",
    // never 0 — a zero would read as a fake measurement.
    println!(
        "wall {} on {cores} core(s){}",
        fmt_dur(wall_ns).trim(),
        match doc.get("peak_rss_bytes").and_then(JsonValue::as_f64) {
            Some(b) => format!(", peak RSS {:.1} MiB", b / (1024.0 * 1024.0)),
            None => ", peak RSS n/a".to_string(),
        }
    );
    if let Some(meta) = doc.get("meta").and_then(JsonValue::as_object) {
        for (k, v) in meta {
            if let Some(s) = v.as_str() {
                println!("  {k}: {s}");
            }
        }
    }

    // --- Phase rows. --------------------------------------------------
    let mut rows: Vec<PhaseRow> = Vec::new();
    if let Some(phases) = doc.get("phases").and_then(JsonValue::as_array) {
        for p in phases {
            rows.push(PhaseRow {
                path: p
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                dataset: p
                    .get("dataset")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                method: p
                    .get("method")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                count: p.get("count").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
                total_ns: p.get("total_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
            });
        }
    }
    if rows.is_empty() {
        println!("\n(no phases recorded)");
        render_health(&doc);
        return if render_compare(&args, &text) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // --- Flamegraph-style breakdown: aggregate per path, indent by
    // nesting depth, bar scaled to the largest root. -------------------
    let mut by_path: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for r in &rows {
        let e = by_path.entry(r.path.clone()).or_insert((0, 0));
        e.0 += r.count;
        e.1 += r.total_ns;
    }
    let max_root = by_path
        .iter()
        .filter(|(p, _)| !p.contains('.'))
        .map(|(_, (_, total))| *total)
        .max()
        .unwrap_or(1)
        .max(1);
    // `self` is the exclusive time: a path's total minus its direct
    // children's totals (clamped at zero against overlap from
    // concurrent spans) — where the time was actually spent, not just
    // which subtree it flowed through.
    println!("\nphase breakdown (total | self)");
    for (p, (count, total)) in &by_path {
        let prefix = format!("{p}.");
        let child_total: u64 = by_path
            .iter()
            .filter(|(c, _)| {
                c.strip_prefix(prefix.as_str())
                    .is_some_and(|rest| !rest.contains('.'))
            })
            .map(|(_, (_, t))| *t)
            .sum();
        let self_ns = total.saturating_sub(child_total);
        let depth = p.matches('.').count();
        let label = p.rsplit('.').next().unwrap_or(p);
        let indent = "  ".repeat(depth);
        let name = format!("{indent}{label}");
        println!(
            "  {name:<28} {} {} {} {count:>7} span(s)",
            bar(*total as f64 / max_root as f64, 24),
            fmt_dur(*total),
            fmt_dur(self_ns)
        );
    }

    // --- Top-N slowest (dataset, method) cells: shallowest path per
    // cell so nested spans are not double-counted. ---------------------
    let mut cell_depth: BTreeMap<(String, String), usize> = BTreeMap::new();
    for r in &rows {
        if r.dataset.is_empty() && r.method.is_empty() {
            continue;
        }
        let key = (r.dataset.clone(), r.method.clone());
        let depth = r.path.matches('.').count();
        let e = cell_depth.entry(key).or_insert(depth);
        *e = (*e).min(depth);
    }
    let mut cells: BTreeMap<(String, String), u64> = BTreeMap::new();
    for r in &rows {
        let key = (r.dataset.clone(), r.method.clone());
        if cell_depth.get(&key) == Some(&r.path.matches('.').count()) {
            *cells.entry(key).or_insert(0) += r.total_ns;
        }
    }
    let mut cells: Vec<((String, String), u64)> = cells.into_iter().collect();
    cells.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if !cells.is_empty() {
        println!(
            "\ntop {} slowest (dataset, method) cells",
            top_n.min(cells.len())
        );
        for ((dataset, method), total) in cells.iter().take(top_n) {
            let label = match (dataset.is_empty(), method.is_empty()) {
                (false, false) => format!("{dataset} x {method}"),
                (false, true) => dataset.clone(),
                _ => method.clone(),
            };
            println!("  {label:<28} {}", fmt_dur(*total));
        }
    }

    // --- Counters, gauges, histograms. --------------------------------
    if let Some(counters) = doc.get("counters").and_then(JsonValue::as_object) {
        if !counters.is_empty() {
            println!("\ncounters");
            for (k, v) in counters {
                if let Some(n) = v.as_f64() {
                    println!("  {k:<36} {n:>16}");
                }
            }
        }
    }
    if let Some(gauges) = doc.get("gauges").and_then(JsonValue::as_object) {
        if !gauges.is_empty() {
            println!("\ngauges");
            for (k, v) in gauges {
                if let Some(n) = v.as_f64() {
                    println!("  {k:<36} {n:>16}");
                }
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(JsonValue::as_object) {
        if !hists.is_empty() {
            println!("\nhistograms (count / mean / p50 / p90 / p99 / max)");
            for (k, v) in hists {
                let f = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
                println!(
                    "  {k:<28} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    f("count") as u64,
                    f("mean"),
                    f("p50"),
                    f("p90"),
                    f("p99"),
                    f("max"),
                );
            }
        }
    }
    render_health(&doc);
    if !render_compare(&args, &text) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

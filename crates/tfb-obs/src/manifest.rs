//! The end-of-run manifest: a deterministic, diff-stable JSON summary of
//! everything the recorder observed, written next to the report.
//!
//! The schema (`tfb-obs/v1`):
//!
//! ```json
//! {
//!   "schema": "tfb-obs/v1",
//!   "meta": {"config_hash": "…", "git_rev": "…", "seed": "0"},
//!   "cores": 4,
//!   "wall_ns": 123456789,
//!   "peak_rss_bytes": 104857600,
//!   "events_path": "run.events.jsonl",
//!   "phases": [
//!     {"path": "job.train", "dataset": "ILI", "method": "LR",
//!      "count": 1, "total_ns": 5210, "min_ns": 5210, "max_ns": 5210}
//!   ],
//!   "counters": {"gemm/calls": 42},
//!   "gauges": {"engine/threads": 8},
//!   "histograms": {
//!     "nn/epoch_val_loss": {"count": 3, "mean": 0.5, "min": 0.1,
//!                            "max": 1.0, "p50": 0.4, "p90": 1.0, "p99": 1.0}
//!   },
//!   "metrics": [
//!     {"dataset": "ILI", "method": "LR", "horizon": 24, "name": "mae",
//!      "value": 0.41}
//!   ],
//!   "health": {
//!     "nan_cells": [], "diverged_cells": [], "aborted_cells": [],
//!     "grad_norms": {"NLinear": {"count": 3, "mean": 0.5, "min": 0.1,
//!                                 "max": 1.0, "p50": 0.4, "p90": 1.0,
//!                                 "p99": 1.0}}
//!   }
//! }
//! ```
//!
//! `metrics` carries the per-cell accuracy values the report layer
//! computed (MAE, MSE, …), so cross-run tooling can gate on correctness
//! drift, not just wall time. `health` summarizes the numerical-health
//! probes: cells whose training hit a non-finite loss (`nan_cells`),
//! cells aborted by the divergence detector (`diverged_cells`), their
//! union (`aborted_cells`), and per-method gradient-norm histograms.
//!
//! Phases are sorted by `(path, dataset, method)`; counters, gauges and
//! histograms by name; metrics by `(dataset, method, horizon, name)` —
//! so two runs with the same observations serialize byte-identically
//! regardless of thread interleaving.

use std::path::Path;

/// Aggregated timing of one `(span path, dataset, method)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Dot-joined span nesting path, e.g. `job.train`.
    pub path: String,
    /// Dataset field ("" when the span carried none).
    pub dataset: String,
    /// Method field ("" when the span carried none).
    pub method: String,
    /// How many spans closed under this key.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

/// Percentile summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

/// One per-cell accuracy metric value (MAE, MSE, …) reported into the
/// manifest so cross-run tooling can gate on correctness drift.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Forecast horizon of the cell.
    pub horizon: usize,
    /// Metric label (`mae`, `mse`, …).
    pub name: String,
    /// Averaged value over the cell's evaluation windows.
    pub value: f64,
}

/// One captured benchmark measurement: the KLV-style record the suite
/// harness (`tfb bench run`) emits per (cell, quantity). Aggregates are
/// taken over `iters` repeated samples of the same cell; `min` is the
/// noise-robust estimate of the true cost (see the gate's noise model in
/// [`crate::history`]), and the provenance fields (`suite`, `engine`,
/// `dataset`, `method`, `characteristic`, `horizon`) let `tfb bench rank`
/// regenerate per-characteristic method rankings from recorded history
/// alone.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementRow {
    /// Full cell id, e.g. `eval/etth1/LR-h24`.
    pub name: String,
    /// What was measured: `wall`, `infer`, `mase`, `throughput`, ….
    pub quantity: String,
    /// Unit of the aggregates (`ns`, `us/window`, `req/s`, "" for
    /// dimensionless accuracy scores).
    pub unit: String,
    /// How many repeated samples the aggregates summarize.
    pub iters: u64,
    /// Smallest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean over samples.
    pub mean: f64,
    /// Population standard deviation over samples.
    pub stddev: f64,
    /// Suite the cell came from, e.g. `eval/etth1`.
    pub suite: String,
    /// Engine that executed the cell (`eval`, `math`, `serve`).
    pub engine: String,
    /// Dataset profile ("" for non-eval engines).
    pub dataset: String,
    /// Method under measurement ("" for non-eval engines).
    pub method: String,
    /// Dominant dataset characteristic the cell is tagged with ("" when
    /// untagged) — the ranking axis of the paper's Tables 6/7.
    pub characteristic: String,
    /// Forecast horizon (0 for non-eval engines).
    pub horizon: u64,
}

/// What a numerical-health probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthKind {
    /// A non-finite (NaN/Inf) loss or forecast value.
    Nan,
    /// The divergence detector tripped (loss ≫ rolling best).
    Diverged,
}

impl HealthKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            HealthKind::Nan => "nan",
            HealthKind::Diverged => "diverged",
        }
    }
}

/// The manifest's `health` section: what the numerical-health probes
/// caught during the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSummary {
    /// `dataset/method` cells that hit a non-finite loss or forecast.
    pub nan_cells: Vec<String>,
    /// Cells aborted by the divergence detector.
    pub diverged_cells: Vec<String>,
    /// Union of the above: every cell a probe aborted or flagged.
    pub aborted_cells: Vec<String>,
    /// Per-method gradient-norm histograms, sorted by method.
    pub grad_norms: Vec<(String, HistSummary)>,
}

impl HealthSummary {
    /// True when no probe fired during the run.
    pub fn is_clean(&self) -> bool {
        self.nan_cells.is_empty() && self.diverged_cells.is_empty() && self.aborted_cells.is_empty()
    }
}

/// The manifest's `slo` section: how the serve session tracked against
/// its latency objective (see [`crate::trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    /// Latency threshold a request must beat to count as good.
    pub threshold_ms: f64,
    /// Availability objective (e.g. `0.99` = 1% error budget).
    pub objective: f64,
    /// Requests scored.
    pub total: u64,
    /// Requests over the threshold.
    pub breaches: u64,
    /// Burn rate over the short (~1 minute) rolling window.
    pub burn_rate_1m: f64,
    /// Burn rate over the long (~5 minute) rolling window.
    pub burn_rate_5m: f64,
}

/// One slow-request exemplar: the trace id of a worst-N request plus its
/// phase breakdown, so a tail-latency regression names the requests that
/// caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceExemplar {
    /// 16-hex-digit trace id (matches the `X-Tfb-Trace-Id` header).
    pub trace_id: String,
    /// End-to-end latency.
    pub total_ns: u64,
    /// Rows in the batch the request rode in (0 when it never reached
    /// the batcher).
    pub batch_size: u64,
    /// `(phase label, ns)` in causal order; only phases that ran.
    pub phases: Vec<(String, u64)>,
}

/// The manifest's `flight` section: whether the black-box flight
/// recorder was armed and how many postmortem bundles it wrote (see
/// [`crate::flight`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightSummary {
    /// Whether the recorder was armed when the run finished.
    pub armed: bool,
    /// Postmortem bundles written.
    pub dumps: u64,
    /// Dump requests suppressed by the rate limiter.
    pub suppressed: u64,
    /// Reason string of the most recent dump ("" when none).
    pub last_reason: String,
}

/// The end-of-run manifest returned by [`finish_run`](crate::finish_run).
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Caller-supplied provenance (config hash, git rev, seed, …).
    pub meta: Vec<(String, String)>,
    /// Available hardware parallelism when the run finished.
    pub cores: usize,
    /// Wall time from `start_run` to `finish_run`.
    pub wall_ns: u64,
    /// Peak RSS at finish, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Where the JSONL event log went, when a sink was installed.
    pub events_path: Option<String>,
    /// Sorted per-(path, dataset, method) timing rows.
    pub phases: Vec<PhaseRow>,
    /// Sorted counter totals.
    pub counters: Vec<(String, u64)>,
    /// Sorted gauge last-values.
    pub gauges: Vec<(String, f64)>,
    /// Sorted histogram summaries.
    pub histograms: Vec<HistSummary>,
    /// Sorted per-cell accuracy metrics.
    pub metrics: Vec<MetricRow>,
    /// Captured benchmark measurements, sorted by `(name, quantity)`;
    /// present only for suite-harness runs. Empty ⇒ the section is
    /// omitted, so pre-harness manifests round-trip byte-identically.
    pub measurements: Vec<MeasurementRow>,
    /// SLO tracking summary; present only for runs that traced
    /// requests (serve sessions). Absent ⇒ the section is omitted, so
    /// pre-trace manifests still round-trip byte-identically.
    pub slo: Option<SloSummary>,
    /// Worst-N slow-request exemplars, slowest first; serialized only
    /// when `slo` is present.
    pub exemplars: Vec<TraceExemplar>,
    /// Flight-recorder summary; present only for runs that armed the
    /// recorder (or dumped a bundle). Absent ⇒ the section is omitted,
    /// so pre-flight manifests still round-trip byte-identically.
    pub flight: Option<FlightSummary>,
    /// Numerical-health summary.
    pub health: HealthSummary,
}

impl Manifest {
    /// Value of one `meta` key, when present.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The distinct span path leaves (last path segment) present — the
    /// "phases covered" set a smoke test asserts on.
    pub fn phase_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .phases
            .iter()
            .map(|p| p.path.rsplit('.').next().unwrap_or(&p.path).to_string())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Pretty JSON (two-space indent), schema `tfb-obs/v1`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"tfb-obs/v1\",\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_str(&mut out, v);
        }
        if !self.meta.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        match self.peak_rss_bytes {
            Some(b) => out.push_str(&format!("  \"peak_rss_bytes\": {b},\n")),
            None => out.push_str("  \"peak_rss_bytes\": null,\n"),
        }
        match &self.events_path {
            Some(p) => {
                out.push_str("  \"events_path\": ");
                json_str(&mut out, p);
                out.push_str(",\n");
            }
            None => out.push_str("  \"events_path\": null,\n"),
        }
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": ");
            json_str(&mut out, &p.path);
            out.push_str(", \"dataset\": ");
            json_str(&mut out, &p.dataset);
            out.push_str(", \"method\": ");
            json_str(&mut out, &p.method);
            out.push_str(&format!(
                ", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                p.count, p.total_ns, p.min_ns, p.max_ns
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_num(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, &h.name);
            out.push_str(": ");
            json_hist(&mut out, h);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"dataset\": ");
            json_str(&mut out, &m.dataset);
            out.push_str(", \"method\": ");
            json_str(&mut out, &m.method);
            out.push_str(&format!(", \"horizon\": {}, \"name\": ", m.horizon));
            json_str(&mut out, &m.name);
            out.push_str(", \"value\": ");
            json_num(&mut out, m.value);
            out.push('}');
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        if !self.measurements.is_empty() {
            out.push_str("  \"measurements\": [");
            for (i, r) in self.measurements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"name\": ");
                json_str(&mut out, &r.name);
                out.push_str(", \"quantity\": ");
                json_str(&mut out, &r.quantity);
                out.push_str(", \"unit\": ");
                json_str(&mut out, &r.unit);
                out.push_str(&format!(", \"iters\": {}, \"min\": ", r.iters));
                json_num(&mut out, r.min);
                out.push_str(", \"median\": ");
                json_num(&mut out, r.median);
                out.push_str(", \"mean\": ");
                json_num(&mut out, r.mean);
                out.push_str(", \"stddev\": ");
                json_num(&mut out, r.stddev);
                out.push_str(", \"suite\": ");
                json_str(&mut out, &r.suite);
                out.push_str(", \"engine\": ");
                json_str(&mut out, &r.engine);
                out.push_str(", \"dataset\": ");
                json_str(&mut out, &r.dataset);
                out.push_str(", \"method\": ");
                json_str(&mut out, &r.method);
                out.push_str(", \"characteristic\": ");
                json_str(&mut out, &r.characteristic);
                out.push_str(&format!(", \"horizon\": {}}}", r.horizon));
            }
            out.push_str("\n  ],\n");
        }
        if let Some(slo) = &self.slo {
            out.push_str("  \"slo\": {\"threshold_ms\": ");
            json_num(&mut out, slo.threshold_ms);
            out.push_str(", \"objective\": ");
            json_num(&mut out, slo.objective);
            out.push_str(&format!(
                ", \"total\": {}, \"breaches\": {}, \"burn_rate_1m\": ",
                slo.total, slo.breaches
            ));
            json_num(&mut out, slo.burn_rate_1m);
            out.push_str(", \"burn_rate_5m\": ");
            json_num(&mut out, slo.burn_rate_5m);
            out.push_str("},\n");
            out.push_str("  \"exemplars\": [");
            for (i, e) in self.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"trace_id\": ");
                json_str(&mut out, &e.trace_id);
                out.push_str(&format!(
                    ", \"total_ns\": {}, \"batch_size\": {}, \"phases\": {{",
                    e.total_ns, e.batch_size
                ));
                for (j, (phase, ns)) in e.phases.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json_str(&mut out, phase);
                    out.push_str(&format!(": {ns}"));
                }
                out.push_str("}}");
            }
            if !self.exemplars.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("],\n");
        }
        if let Some(f) = &self.flight {
            out.push_str(&format!(
                "  \"flight\": {{\"armed\": {}, \"dumps\": {}, \"suppressed\": {}, \"last_reason\": ",
                f.armed, f.dumps, f.suppressed
            ));
            json_str(&mut out, &f.last_reason);
            out.push_str("},\n");
        }
        out.push_str("  \"health\": {\n");
        let cell_list = |out: &mut String, key: &str, cells: &[String]| {
            out.push_str(&format!("    \"{key}\": ["));
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_str(out, c);
            }
            out.push(']');
        };
        cell_list(&mut out, "nan_cells", &self.health.nan_cells);
        out.push_str(",\n");
        cell_list(&mut out, "diverged_cells", &self.health.diverged_cells);
        out.push_str(",\n");
        cell_list(&mut out, "aborted_cells", &self.health.aborted_cells);
        out.push_str(",\n    \"grad_norms\": {");
        for (i, (method, h)) in self.health.grad_norms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            json_str(&mut out, method);
            out.push_str(": ");
            json_hist(&mut out, h);
        }
        if !self.health.grad_norms.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  }\n}\n");
        out
    }

    /// Writes the JSON form to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// A point-in-time view of the live counter/gauge/histogram registries,
/// taken without finishing the run. This is what a serving process dumps
/// from `GET /metrics` while it keeps handling traffic.
///
/// Entries are sorted by name so the rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Sorted counter totals.
    pub counters: Vec<(String, u64)>,
    /// Sorted gauge last-values.
    pub gauges: Vec<(String, f64)>,
    /// Sorted histogram summaries.
    pub histograms: Vec<HistSummary>,
}

impl MetricsSnapshot {
    /// Pretty JSON (two-space indent), schema `tfb-obs-metrics/v1`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": \"tfb-obs-metrics/v1\",\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_num(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, &h.name);
            out.push_str(": ");
            json_hist(&mut out, h);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// sample with at least `q`% of the mass at or below it. Empty input
/// yields NaN.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Escapes `s` as a JSON string into `out`.
pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes one histogram summary object.
pub(crate) fn json_hist(out: &mut String, h: &HistSummary) {
    out.push_str(&format!("{{\"count\": {}, \"mean\": ", h.count));
    json_num(out, h.mean);
    out.push_str(", \"min\": ");
    json_num(out, h.min);
    out.push_str(", \"max\": ");
    json_num(out, h.max);
    out.push_str(", \"p50\": ");
    json_num(out, h.p50);
    out.push_str(", \"p90\": ");
    json_num(out, h.p90);
    out.push_str(", \"p99\": ");
    json_num(out, h.p99);
    out.push('}');
}

/// Writes an f64 as JSON (`null` for non-finite values).
pub(crate) fn json_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_on_known_inputs() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 90.0), 90.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert!(percentile(&[], 50.0).is_nan());
        // Five elements: p50 is the 3rd (nearest rank ceil(2.5) = 3).
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 50.0), 3.0);
    }

    #[test]
    fn manifest_json_is_valid_and_diff_stable() {
        let m = Manifest {
            meta: vec![("config_hash".into(), "abc".into())],
            cores: 2,
            wall_ns: 10,
            peak_rss_bytes: Some(4096),
            events_path: None,
            phases: vec![PhaseRow {
                path: "job.train".into(),
                dataset: "ILI".into(),
                method: "LR \"q\"".into(),
                count: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            }],
            counters: vec![("gemm/calls".into(), 3)],
            gauges: vec![("threads".into(), 2.0)],
            histograms: vec![HistSummary {
                name: "loss".into(),
                count: 1,
                mean: 0.5,
                min: 0.5,
                max: 0.5,
                p50: 0.5,
                p90: 0.5,
                p99: 0.5,
            }],
            metrics: vec![MetricRow {
                dataset: "ILI".into(),
                method: "LR".into(),
                horizon: 24,
                name: "mae".into(),
                value: 0.41,
            }],
            measurements: vec![],
            slo: None,
            exemplars: vec![],
            flight: None,
            health: HealthSummary {
                nan_cells: vec!["ILI/MLP".into()],
                diverged_cells: vec![],
                aborted_cells: vec!["ILI/MLP".into()],
                grad_norms: vec![(
                    "MLP".into(),
                    HistSummary {
                        name: "MLP".into(),
                        count: 2,
                        mean: 1.0,
                        min: 0.5,
                        max: 1.5,
                        p50: 0.5,
                        p90: 1.5,
                        p99: 1.5,
                    },
                )],
            },
        };
        let a = m.to_json();
        assert_eq!(a, m.to_json());
        assert!(a.contains("\"schema\": \"tfb-obs/v1\""));
        assert!(a.contains("\\\"q\\\""), "{a}");
        assert!(a.contains("\"metrics\": ["), "{a}");
        assert!(a.contains("\"name\": \"mae\", \"value\": 0.41"), "{a}");
        assert!(a.contains("\"nan_cells\": [\"ILI/MLP\"]"), "{a}");
        assert!(a.contains("\"grad_norms\": {"), "{a}");
        assert_eq!(m.phase_names(), vec!["train".to_string()]);
        assert_eq!(m.meta_value("config_hash"), Some("abc"));
        assert_eq!(m.meta_value("missing"), None);
    }

    #[test]
    fn slo_and_exemplars_serialize_only_when_present() {
        let mut m = Manifest::default();
        let without = m.to_json();
        assert!(!without.contains("\"slo\""), "{without}");
        assert!(!without.contains("\"exemplars\""), "{without}");
        m.slo = Some(SloSummary {
            threshold_ms: 50.0,
            objective: 0.99,
            total: 120,
            breaches: 3,
            burn_rate_1m: 2.5,
            burn_rate_5m: 0.5,
        });
        m.exemplars = vec![TraceExemplar {
            trace_id: "00ab00ab00ab00ab".into(),
            total_ns: 61_000_000,
            batch_size: 4,
            phases: vec![("queue".into(), 1_000), ("infer".into(), 60_999_000)],
        }];
        let with = m.to_json();
        assert!(
            with.contains("\"slo\": {\"threshold_ms\": 50, \"objective\": 0.99"),
            "{with}"
        );
        assert!(with.contains("\"total\": 120, \"breaches\": 3"), "{with}");
        assert!(
            with.contains("\"trace_id\": \"00ab00ab00ab00ab\""),
            "{with}"
        );
        assert!(
            with.contains("\"phases\": {\"queue\": 1000, \"infer\": 60999000}"),
            "{with}"
        );
        // The section sits between metrics and health.
        let slo_at = with.find("\"slo\"").unwrap();
        assert!(with.find("\"metrics\"").unwrap() < slo_at);
        assert!(slo_at < with.find("\"health\"").unwrap());
    }

    #[test]
    fn measurements_serialize_only_when_present() {
        let mut m = Manifest::default();
        let without = m.to_json();
        assert!(!without.contains("\"measurements\""), "{without}");
        m.measurements = vec![MeasurementRow {
            name: "eval/etth1/LR-h24".into(),
            quantity: "wall".into(),
            unit: "ns".into(),
            iters: 3,
            min: 1000.0,
            median: 1100.0,
            mean: 1150.0,
            stddev: 80.5,
            suite: "eval/etth1".into(),
            engine: "eval".into(),
            dataset: "ETTh1".into(),
            method: "LR".into(),
            characteristic: "trend".into(),
            horizon: 24,
        }];
        let with = m.to_json();
        assert!(
            with.contains("\"name\": \"eval/etth1/LR-h24\", \"quantity\": \"wall\""),
            "{with}"
        );
        assert!(
            with.contains("\"characteristic\": \"trend\", \"horizon\": 24"),
            "{with}"
        );
        // The section sits between metrics and health.
        let at = with.find("\"measurements\"").unwrap();
        assert!(with.find("\"metrics\"").unwrap() < at);
        assert!(at < with.find("\"health\"").unwrap());
    }

    #[test]
    fn empty_manifest_serializes() {
        let m = Manifest::default();
        let json = m.to_json();
        assert!(json.contains("\"phases\": []"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"peak_rss_bytes\": null"));
        assert!(json.contains("\"metrics\": []"));
        assert!(json.contains("\"nan_cells\": []"));
        assert!(m.health.is_clean());
    }
}

//! `tfb-obs` — the observability substrate of the TFB reproduction.
//!
//! A benchmark's claim to fairness is only as strong as its recorded
//! provenance: this crate captures *what actually happened* during a run
//! — per-phase wall time, window counts, kernel call counts, cache
//! hits, allocation volume, peak RSS — and writes it next to the report
//! as a JSONL event log plus an end-of-run **manifest**.
//!
//! Three primitives, all thread-safe and all std-only:
//!
//! * **Spans** — RAII phase timers with nesting and field inheritance:
//!   ```
//!   let _eval = tfb_obs::span!("eval", dataset = "ILI", method = "LR");
//!   {
//!       // Inherits dataset/method from the enclosing span; aggregates
//!       // under the path "eval.train".
//!       let _train = tfb_obs::span!("train");
//!   }
//!   ```
//! * **Typed metrics** — monotonic [`Counter`]s, last-value [`Gauge`]s and
//!   bounded-reservoir [`Histogram`]s declared at the call site:
//!   ```
//!   tfb_obs::counter!("gemm/calls").add(1);
//!   tfb_obs::histogram!("nn/epoch_val_loss").record(0.25);
//!   ```
//! * **Runs** — [`start_run`] arms recording (optionally with a JSONL
//!   event sink); [`finish_run`] disarms it and returns a [`Manifest`]
//!   with the sorted per-(phase, dataset, method) timing breakdown.
//!
//! # Overhead
//!
//! Outside a run every primitive is one relaxed atomic load and a
//! predictable branch. Compiled without the `record` feature (the
//! default is on) the whole API is a set of empty `#[inline]` functions
//! and zero-sized types — the disabled build is provably zero-cost, and
//! enabling instrumentation never changes a forecast: the probes only
//! read clocks and bump counters, so metrics stay bit-identical.

pub mod flight;
pub mod manifest;
pub mod openmetrics;
pub mod trace;

#[cfg(feature = "history")]
pub mod export;
#[cfg(feature = "history")]
pub mod history;

#[cfg(feature = "record")]
mod record;
#[cfg(feature = "record")]
#[doc(hidden)]
pub use record::test_support;
#[cfg(feature = "record")]
pub use record::{
    enabled, finish_run, health_event, metrics_snapshot, record_grad_norm, report_metric,
    start_run, steal_event, Counter, Gauge, Histogram, RunOptions, Span, RESERVOIR_CAP,
};

#[cfg(not(feature = "record"))]
mod noop;
#[cfg(not(feature = "record"))]
pub use noop::{
    enabled, finish_run, health_event, metrics_snapshot, record_grad_norm, report_metric,
    start_run, steal_event, Counter, Gauge, Histogram, RunOptions, Span,
};

#[cfg(feature = "alloc-track")]
pub mod alloc;

pub use manifest::{
    FlightSummary, HealthKind, HealthSummary, HistSummary, Manifest, MeasurementRow, MetricRow,
    MetricsSnapshot, PhaseRow, SloSummary, TraceExemplar,
};

/// Opens a span named `$name`, optionally attaching `key = value` fields.
///
/// The returned guard records the elapsed wall time into the global
/// aggregates (and the event sink, when one is installed) on drop. The
/// `dataset` and `method` field names are special: they key the manifest's
/// per-cell timing breakdown and are inherited by nested spans.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::enter($name)$(.with(stringify!($key), &$value))+
    };
}

/// A process-wide monotonic counter, declared in place:
/// `tfb_obs::counter!("gemm/calls").add(1)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __TFB_OBS_COUNTER: $crate::Counter = $crate::Counter::new($name);
        &__TFB_OBS_COUNTER
    }};
}

/// A process-wide last-value gauge, declared in place:
/// `tfb_obs::gauge!("engine/threads").set(8.0)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __TFB_OBS_GAUGE: $crate::Gauge = $crate::Gauge::new($name);
        &__TFB_OBS_GAUGE
    }};
}

/// A process-wide bounded-reservoir histogram, declared in place:
/// `tfb_obs::histogram!("nn/epoch_val_loss").record(loss)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __TFB_OBS_HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &__TFB_OBS_HISTOGRAM
    }};
}

/// FNV-1a hash of `bytes`, hex-encoded — the manifest's config fingerprint.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    format!("{h:016x}")
}

/// Best-effort current git revision: walks up from the working directory
/// to the nearest `.git` and resolves `HEAD` (no subprocess).
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return resolve_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(reference)) {
            return Some(hash.trim().to_string());
        }
        // The ref may only exist in packed-refs.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(reference) {
                return Some(hash.trim().to_string());
            }
        }
        return None;
    }
    Some(head.to_string())
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when the file is unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_distinguishes() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
        assert_eq!(fnv1a_hex(b"config"), fnv1a_hex(b"config"));
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM on linux");
            assert!(rss > 64 * 1024, "peak RSS {rss} implausibly small");
        }
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The workspace is a git repo; the rev should look like a hash.
        if let Some(rev) = git_rev() {
            assert!(rev.len() >= 7, "{rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
        }
    }
}

//! Integration tests for the run-history store: manifest round-trips,
//! forward compatibility, the content-addressed store, and the gate's
//! noise aggregation.

use std::path::PathBuf;
use tfb_obs::history::{
    diff_manifests, gate, parse_manifest, render_diff, DiffKind, GateTolerances, RunHistory,
};
use tfb_obs::{HealthSummary, HistSummary, Manifest, MeasurementRow, MetricRow, PhaseRow};

/// A populated manifest with a unicode dataset name and an unmeasured
/// (null) peak RSS — the two serialization edge cases that bit before.
fn sample_manifest() -> Manifest {
    Manifest {
        meta: vec![
            ("config_hash".into(), "abc123".into()),
            ("git_rev".into(), "deadbeef".into()),
        ],
        cores: 8,
        wall_ns: 1_000_000_000,
        peak_rss_bytes: None,
        events_path: Some("run.events.jsonl".into()),
        phases: vec![
            PhaseRow {
                path: "job".into(),
                dataset: "ETTh1-中文-Ünïcode".into(),
                method: "LR".into(),
                count: 3,
                total_ns: 900_000,
                min_ns: 100_000,
                max_ns: 500_000,
            },
            PhaseRow {
                path: "job.train".into(),
                dataset: "ETTh1-中文-Ünïcode".into(),
                method: "LR".into(),
                count: 3,
                total_ns: 600_000,
                min_ns: 100_000,
                max_ns: 400_000,
            },
        ],
        counters: vec![("matmul/alloc_bytes".into(), 12_345)],
        gauges: vec![("nn/grad_norm".into(), 1.5)],
        histograms: vec![HistSummary {
            name: "nn/epoch_val_loss".into(),
            count: 10,
            mean: 0.5,
            min: 0.1,
            max: 1.0,
            p50: 0.4,
            p90: 0.9,
            p99: 1.0,
        }],
        metrics: vec![MetricRow {
            dataset: "ETTh1-中文-Ünïcode".into(),
            method: "LR".into(),
            horizon: 24,
            name: "mae".into(),
            value: 0.512,
        }],
        measurements: vec![],
        slo: None,
        exemplars: vec![],
        flight: None,
        health: HealthSummary::default(),
    }
}

/// The same run as recorded by the suite harness: identical content plus
/// a `measurements` section.
fn harness_manifest() -> Manifest {
    let mut m = sample_manifest();
    m.measurements = vec![
        MeasurementRow {
            name: "eval/etth1/LR-h24".into(),
            quantity: "wall".into(),
            unit: "ns".into(),
            iters: 3,
            min: 900_000.0,
            median: 950_000.0,
            mean: 960_000.0,
            stddev: 40_000.0,
            suite: "eval/etth1".into(),
            engine: "eval".into(),
            dataset: "ETTh1-中文-Ünïcode".into(),
            method: "LR".into(),
            characteristic: "trend".into(),
            horizon: 24,
        },
        MeasurementRow {
            name: "eval/etth1/LR-h24".into(),
            quantity: "mase".into(),
            unit: String::new(),
            iters: 3,
            min: 0.512,
            median: 0.512,
            mean: 0.512,
            stddev: 0.0,
            suite: "eval/etth1".into(),
            engine: "eval".into(),
            dataset: "ETTh1-中文-Ünïcode".into(),
            method: "LR".into(),
            characteristic: "trend".into(),
            horizon: 24,
        },
    ];
    m
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfb_history_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn empty_manifest_roundtrips_byte_identical() {
    let json = Manifest::default().to_json();
    let parsed = parse_manifest(&json).expect("parses");
    assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
    assert_eq!(parsed.manifest.to_json(), json);
}

#[test]
fn populated_manifest_roundtrips_byte_identical() {
    // Unicode dataset names and a null RSS must survive
    // serialize -> parse -> re-serialize without a byte of drift.
    let json = sample_manifest().to_json();
    let parsed = parse_manifest(&json).expect("parses");
    assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
    assert_eq!(parsed.manifest.to_json(), json);
    assert!(json.contains("\"peak_rss_bytes\": null"));
    assert!(json.contains("中文"));
}

#[test]
fn unhealthy_manifest_roundtrips_byte_identical() {
    let mut m = sample_manifest();
    m.health = HealthSummary {
        nan_cells: vec!["ILI/MLP".into()],
        diverged_cells: vec!["ETTh1/RNN".into()],
        aborted_cells: vec!["ETTh1/RNN".into(), "ILI/MLP".into()],
        grad_norms: vec![(
            "MLP".into(),
            HistSummary {
                name: "MLP".into(),
                count: 4,
                mean: 2.0,
                min: 0.5,
                max: 4.0,
                p50: 1.5,
                p90: 3.5,
                p99: 4.0,
            },
        )],
    };
    let json = m.to_json();
    let parsed = parse_manifest(&json).expect("parses");
    assert_eq!(parsed.manifest.to_json(), json);
    assert_eq!(
        parsed.manifest.health.nan_cells,
        vec!["ILI/MLP".to_string()]
    );
}

#[test]
fn future_schema_with_unknown_field_warns_instead_of_failing() {
    // A manifest written by a newer tfb-obs (extra top-level field, bumped
    // schema) must parse best-effort with warnings — and must not fail a
    // gate run on parse grounds.
    let json = sample_manifest().to_json().replace(
        "\"schema\": \"tfb-obs/v1\",",
        "\"schema\": \"tfb-obs/v2\",\n  \"quantum_widget\": 7,",
    );
    let parsed = parse_manifest(&json).expect("best-effort parse");
    assert!(
        parsed.warnings.iter().any(|w| w.contains("tfb-obs/v2")),
        "missing schema warning: {:?}",
        parsed.warnings
    );
    assert!(
        parsed.warnings.iter().any(|w| w.contains("quantum_widget")),
        "missing unknown-field warning: {:?}",
        parsed.warnings
    );
    // Known fields still land.
    assert_eq!(parsed.manifest.wall_ns, 1_000_000_000);
    assert_eq!(parsed.manifest.metrics.len(), 1);
    // Same run as baseline and candidate: the gate passes.
    let report = gate(
        &[&parsed.manifest],
        &parsed.manifest,
        &GateTolerances::default(),
    );
    assert!(report.passed(), "{:?}", report.failures);
}

#[test]
fn totally_unknown_schema_is_rejected() {
    let json = sample_manifest()
        .to_json()
        .replace("tfb-obs/v1", "someone-else/v9");
    assert!(parse_manifest(&json).is_err());
}

#[test]
fn store_dedups_blobs_and_survives_reopen() {
    let root = temp_store("dedup");
    let m = sample_manifest();
    {
        let mut h = RunHistory::open(&root).expect("open");
        h.append(&m).expect("append 1");
        h.append(&m).expect("append 2"); // identical bytes -> same blob
        let mut changed = sample_manifest();
        changed.wall_ns += 1;
        h.append(&changed).expect("append 3");
        assert_eq!(h.entries().len(), 3);
    }
    // Identical manifests share one content-addressed blob.
    let blobs = std::fs::read_dir(root.join("manifests")).unwrap().count();
    assert_eq!(blobs, 2, "two distinct manifests -> two blobs");
    // The index is durable: a fresh open sees every append.
    let h = RunHistory::open(&root).expect("reopen");
    assert_eq!(h.entries().len(), 3);
    assert_eq!(h.resolve("first").unwrap().seq, 0);
    assert_eq!(h.resolve("last").unwrap().seq, 2);
    assert_eq!(h.resolve("1").unwrap().seq, 1);
    // Id-prefix selector: the shared id resolves to the newest match.
    let shared = h.entries()[0].id.clone();
    assert_eq!(h.resolve(&shared).unwrap().seq, 1);
    // Provenance is denormalized into the index.
    assert_eq!(h.entries()[0].config_hash, "abc123");
    assert_eq!(h.entries()[0].git_rev, "deadbeef");
    // Blobs load back to the exact manifest.
    let loaded = h.load(h.resolve("first").unwrap()).expect("load");
    assert_eq!(loaded.manifest.to_json(), m.to_json());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn harness_manifest_roundtrips_byte_identical() {
    let json = harness_manifest().to_json();
    let parsed = parse_manifest(&json).expect("parses");
    assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
    assert_eq!(parsed.manifest.to_json(), json);
    assert!(json.contains("\"measurements\": ["), "{json}");
    // Pre-harness manifests keep their exact shape: no empty section.
    assert!(!sample_manifest().to_json().contains("measurements"));
}

#[test]
fn mixed_schema_history_diffs_and_gates_without_panicking() {
    // Satellite 3: a harness manifest (with measurement keys) recorded
    // next to pre-harness manifests in one store must diff and gate
    // cleanly in both directions, through the store (bytes, not structs).
    let root = temp_store("mixed");
    let mut h = RunHistory::open(&root).expect("open");
    let old = sample_manifest();
    h.append(&old).expect("append pre-harness");
    h.append(&harness_manifest()).expect("append harness");
    let h = RunHistory::open(&root).expect("reopen");
    let first = h.load(h.resolve("first").unwrap()).expect("load first");
    let last = h.load(h.resolve("last").unwrap()).expect("load last");
    assert!(first.manifest.measurements.is_empty());
    assert_eq!(last.manifest.measurements.len(), 2);

    for (base, cand) in [(&first, &last), (&last, &first)] {
        let rows = diff_manifests(&base.manifest, &cand.manifest);
        // One-sided measurement rows render n/a, never a fake delta.
        for r in rows.iter().filter(|r| r.kind == DiffKind::Measurement) {
            assert_eq!(r.delta_pct(), None, "{r:?}");
        }
        let report = gate(
            &[&base.manifest],
            &cand.manifest,
            &GateTolerances::default(),
        );
        assert!(report.passed(), "{:?}", report.failures);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn harness_manifest_with_unknown_measurement_keys_warns_not_drops() {
    // A future harness may add per-row keys (e.g. alloc deltas) or new
    // top-level sections. Unknown top-level fields warn; unknown row
    // keys are ignored while every known key still lands.
    let json = harness_manifest().to_json().replace(
        "\"iters\": 3,",
        "\"iters\": 3, \"alloc_delta_bytes\": 4096,",
    );
    let json = json.replace(
        "  \"measurements\": [",
        "  \"measurement_env\": {\"cpufreq\": \"performance\"},\n  \"measurements\": [",
    );
    let parsed = parse_manifest(&json).expect("best-effort parse");
    assert!(
        parsed
            .warnings
            .iter()
            .any(|w| w.contains("measurement_env")),
        "{:?}",
        parsed.warnings
    );
    assert_eq!(parsed.manifest.measurements.len(), 2);
    assert_eq!(parsed.manifest.measurements[0].iters, 3);
    assert_eq!(parsed.manifest.measurements[0].min, 900_000.0);
    // And the parsed manifest still gates against itself.
    let report = gate(
        &[&parsed.manifest],
        &parsed.manifest,
        &GateTolerances::default(),
    );
    assert!(report.passed(), "{:?}", report.failures);
}

#[test]
fn diff_sorts_worst_regression_first_and_renders_na_rss() {
    let base = sample_manifest();
    let mut new = sample_manifest();
    // job.train doubles (+100%), the metric creeps +1%.
    new.phases[1].total_ns *= 2;
    new.phases[0].total_ns += new.phases[1].total_ns / 2;
    new.metrics[0].value *= 1.01;
    let rows = diff_manifests(&base, &new);
    assert_eq!(rows[0].kind, DiffKind::Phase);
    assert_eq!(rows[0].name, "job.train");
    let rendered = render_diff(&rows);
    // RSS was unmeasured on both sides: "n/a", never a fake 0 / -100%.
    assert!(rendered.contains("n/a"), "{rendered}");
    assert!(!rendered.contains("-100.0%"), "{rendered}");
}

#[test]
fn gate_takes_min_over_baselines_and_median_over_metrics() {
    let mk = |wall: u64, mae: f64| {
        let mut m = sample_manifest();
        m.wall_ns = wall;
        m.phases.clear(); // isolate the wall/metric checks
        m.counters.clear();
        m.metrics[0].value = mae;
        m
    };
    let b1 = mk(100_000, 1.0);
    let b2 = mk(120_000, 1.1);
    let b3 = mk(140_000, 1.2);
    let baselines = [&b1, &b2, &b3];
    let tol = GateTolerances::default(); // 10% resources, 5% metrics
                                         // +9% over the *fastest* baseline and +3.6% over the *median* MAE: ok.
    let ok = mk(109_000, 1.14);
    let report = gate(&baselines, &ok, &tol);
    assert!(report.passed(), "{:?}", report.failures);
    // +15% wall over the min fails even though it beats the slowest run.
    let slow = mk(115_000, 1.0);
    let report = gate(&baselines, &slow, &tol);
    assert!(!report.passed());
    assert!(
        report.failures[0].contains("wall_ns"),
        "{:?}",
        report.failures
    );
    // +9% MAE over the median fails the tighter metric tolerance.
    let wrong = mk(100_000, 1.2);
    let report = gate(&baselines, &wrong, &tol);
    assert!(!report.passed());
    assert!(report.failures[0].contains("mae"), "{:?}", report.failures);
}

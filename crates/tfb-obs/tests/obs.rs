//! Integration tests for the recorder: run lifecycle, concurrent span
//! aggregation determinism, histogram flush, and the JSONL event sink.
//!
//! The recorder is process-global, so every test that arms a run
//! serializes through `RUN_LOCK`.

#![cfg(feature = "record")]

use std::sync::Mutex;
use tfb_obs::{counter, finish_run, gauge, histogram, span, start_run, Manifest, RunOptions};

static RUN_LOCK: Mutex<()> = Mutex::new(());

fn with_run(opts: RunOptions, f: impl FnOnce()) -> Manifest {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    start_run(opts).expect("start_run");
    f();
    finish_run(&[("test", "1".to_string())]).expect("finish_run returns a manifest")
}

#[test]
fn run_lifecycle_produces_manifest() {
    let manifest = with_run(RunOptions::default(), || {
        let s = span!("job", dataset = "ILI", method = "LR");
        {
            let _inner = span!("train");
        }
        s.close();
        counter!("test/windows").add(7);
        gauge!("test/threads").set(3.0);
    });
    assert!(manifest.wall_ns > 0);
    assert!(manifest.cores >= 1);
    let paths: Vec<&str> = manifest.phases.iter().map(|p| p.path.as_str()).collect();
    assert_eq!(paths, ["job", "job.train"]);
    // The nested span inherited dataset/method from its parent.
    let train = &manifest.phases[1];
    assert_eq!(
        (train.dataset.as_str(), train.method.as_str()),
        ("ILI", "LR")
    );
    assert_eq!(train.count, 1);
    assert!(
        manifest
            .counters
            .iter()
            .any(|(k, v)| k == "test/windows" && *v == 7),
        "{:?}",
        manifest.counters
    );
    assert!(manifest
        .gauges
        .iter()
        .any(|(k, v)| k == "test/threads" && *v == 3.0));
    assert_eq!(
        manifest.phase_names(),
        vec!["job".to_string(), "train".to_string()]
    );
}

#[test]
fn concurrent_span_aggregation_is_deterministic_after_sorted_flush() {
    // 8 threads x 50 spans each over 4 (dataset, method) cells with
    // injected durations: totals must be exact and the flush order
    // sorted, regardless of interleaving. Run it twice and compare.
    let run_once = || {
        with_run(RunOptions::default(), || {
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        for i in 0..50u64 {
                            let cell = (t + i) % 4;
                            tfb_obs::test_support::record_span_ns(
                                "job.infer",
                                &format!("D{}", cell / 2),
                                &format!("M{}", cell % 2),
                                1000 + i,
                            );
                        }
                    });
                }
            });
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.phases, b.phases, "flush must not depend on interleaving");
    assert_eq!(a.phases.len(), 4);
    // Sorted by (path, dataset, method).
    let keys: Vec<(&str, &str)> = a
        .phases
        .iter()
        .map(|p| (p.dataset.as_str(), p.method.as_str()))
        .collect();
    assert_eq!(
        keys,
        [("D0", "M0"), ("D0", "M1"), ("D1", "M0"), ("D1", "M1")]
    );
    // Exact totals: each cell gets 100 spans; durations are a fixed
    // multiset independent of thread assignment.
    let total: u64 = a.phases.iter().map(|p| p.total_ns).sum();
    let expect: u64 = (0..8u64)
        .map(|_| (0..50u64).map(|i| 1000 + i).sum::<u64>())
        .sum();
    assert_eq!(total, expect);
    for p in &a.phases {
        assert_eq!(p.count, 100);
        assert!(p.min_ns >= 1000 && p.max_ns <= 1049);
    }
}

#[test]
fn histogram_percentiles_flush_correctly() {
    let manifest = with_run(RunOptions::default(), || {
        for i in 1..=100 {
            histogram!("test/latency").record(i as f64);
        }
    });
    let h = manifest
        .histograms
        .iter()
        .find(|h| h.name == "test/latency")
        .expect("histogram flushed");
    assert_eq!(h.count, 100);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 100.0);
    assert_eq!(h.p50, 50.0);
    assert_eq!(h.p90, 90.0);
    assert_eq!(h.p99, 99.0);
    assert!((h.mean - 50.5).abs() < 1e-12);
}

#[test]
fn metrics_reset_between_runs() {
    let first = with_run(RunOptions::default(), || {
        counter!("test/reset").add(5);
    });
    assert!(first
        .counters
        .iter()
        .any(|(k, v)| k == "test/reset" && *v == 5));
    // Second run never touches the counter: it must not reappear.
    let second = with_run(RunOptions::default(), || {});
    assert!(
        !second.counters.iter().any(|(k, _)| k == "test/reset"),
        "{:?}",
        second.counters
    );
}

#[test]
fn disabled_probes_are_inert() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!tfb_obs::enabled());
    // No run armed: these must all be silent no-ops.
    let s = span!("orphan", dataset = "X");
    s.close();
    counter!("test/inert").add(1);
    histogram!("test/inert_h").record(1.0);
    assert!(finish_run(&[]).is_none());
}

#[test]
fn event_sink_writes_valid_jsonl() {
    let dir = std::env::temp_dir().join(format!("tfb_obs_sink_{}", std::process::id()));
    let events = dir.join("run.events.jsonl");
    let manifest = with_run(
        RunOptions {
            events_path: Some(events.clone()),
        },
        || {
            let _s = span!("job", dataset = "ILI", method = "LR").record("loss", 0.5);
        },
    );
    assert_eq!(
        manifest.events_path.as_deref(),
        Some(events.display().to_string().as_str())
    );
    let text = std::fs::read_to_string(&events).expect("events written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 3,
        "run_start + span + run_end, got {lines:?}"
    );
    assert!(lines[0].contains("\"ev\":\"run_start\""));
    assert!(lines.last().unwrap().contains("\"ev\":\"run_end\""));
    let span_line = lines
        .iter()
        .find(|l| l.contains("\"ev\":\"span\""))
        .unwrap();
    assert!(span_line.contains("\"path\":\"job\""), "{span_line}");
    assert!(span_line.contains("\"dataset\":\"ILI\""));
    assert!(
        span_line.contains("\"fields\":{\"loss\":0.5}"),
        "{span_line}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_json_parses_back() {
    // The manifest writer is hand-rolled; cross-check it against the
    // strict in-repo JSON parser via a string round-trip of quotes and
    // control characters.
    let manifest = with_run(RunOptions::default(), || {
        let _s = span!("job", dataset = "we\"ird\n", method = "LR");
    });
    let json = manifest.to_json();
    // A hand-rolled structural sanity check (tfb-json is not a dependency
    // of the test build without the summarizer feature): balanced braces
    // and the escaped payload present.
    assert!(json.contains("we\\\"ird\\n"), "{json}");
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
}

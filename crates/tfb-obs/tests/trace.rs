//! Integration tests for per-request tracing under concurrency: id
//! uniqueness, phase-sum ≤ end-to-end bounds (via the JSONL event
//! sink), the SLO tracker, the exemplar ring, and the OpenMetrics
//! rendering of the live state.
//!
//! The trace registries are process-global, so every test that arms a
//! run serializes through `RUN_LOCK`.

#![cfg(feature = "record")]

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tfb_json::JsonValue;
use tfb_obs::trace::{self, Phase, RequestTrace, SloConfig, TraceStatus, EXEMPLAR_CAP};
use tfb_obs::{finish_run, start_run, Manifest, RunOptions};

static RUN_LOCK: Mutex<()> = Mutex::new(());

fn with_run(opts: RunOptions, f: impl FnOnce()) -> Manifest {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    start_run(opts).expect("start_run");
    f();
    finish_run(&[("test", "1".to_string())]).expect("finish_run returns a manifest")
}

fn temp_events(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tfb_trace_{tag}_{}.jsonl", std::process::id()))
}

/// Simulates one traced request with real elapsed time, so the phase
/// sums the sink records are genuinely bounded by the end-to-end total.
fn simulate_request(batch_id: u64) {
    let mut t = RequestTrace::begin();
    assert!(t.active(), "trace must be live inside a run");
    std::thread::sleep(Duration::from_micros(30));
    t.mark(Phase::Parse);
    // The "batcher-side" wait is measured for real: the three absorbed
    // components sum to at most the wall time that actually passed.
    let waited_from = Instant::now();
    std::thread::sleep(Duration::from_micros(90));
    let waited = waited_from.elapsed().as_nanos() as u64;
    t.absorb_batch(waited / 3, waited / 3, waited / 3, batch_id, 4);
    std::thread::sleep(Duration::from_micros(10));
    t.mark(Phase::Write);
    t.finish();
}

#[test]
fn trace_ids_unique_and_phase_sums_bounded_under_48_threads() {
    let events = temp_events("load");
    let _ = std::fs::remove_file(&events);
    let manifest = with_run(
        RunOptions {
            events_path: Some(events.clone()),
        },
        || {
            std::thread::scope(|scope| {
                for i in 0..48u64 {
                    scope.spawn(move || simulate_request(i % 7 + 1));
                }
            });
        },
    );

    // Every traced request landed in the sink with a process-unique id
    // and internally consistent timings.
    let text = std::fs::read_to_string(&events).expect("events file");
    let mut ids: HashSet<String> = HashSet::new();
    let mut traces = 0usize;
    for line in text.lines() {
        let v = JsonValue::parse(line).expect("valid JSONL line");
        if v.get("ev").and_then(|e| e.as_str()) != Some("trace") {
            continue;
        }
        traces += 1;
        let id = v
            .get("trace_id")
            .and_then(|t| t.as_str())
            .expect("trace_id")
            .to_string();
        assert_eq!(id.len(), 16, "trace ids render as 16 hex digits: {id}");
        assert!(ids.insert(id), "duplicate trace id under concurrency");
        let total_ns = v
            .get("total_ns")
            .and_then(|t| t.as_f64())
            .expect("total_ns");
        assert!(total_ns > 0.0);
        let phase_sum: f64 = v
            .get("phases")
            .and_then(|p| p.as_object())
            .expect("phases object")
            .iter()
            .map(|(_, ns)| ns.as_f64().expect("phase ns"))
            .sum();
        assert!(
            phase_sum <= total_ns,
            "phase sum {phase_sum} exceeds end-to-end total {total_ns}"
        );
        // The simulated sleeps guarantee most of the total is
        // attributed: the unaccounted residual is only scheduler noise.
        assert!(phase_sum > 0.0, "no phase time attributed");
        assert!(v.get("batch_id").and_then(|b| b.as_f64()).is_some());
    }
    assert_eq!(traces, 48, "every request produced exactly one trace event");

    // Aggregates made it into the manifest: all 48 scored, worst-N ring
    // bounded, and the exemplars are sorted slowest-first.
    let slo = manifest.slo.as_ref().expect("slo section");
    assert_eq!(slo.total, 48);
    assert!(!manifest.exemplars.is_empty());
    assert!(manifest.exemplars.len() <= EXEMPLAR_CAP);
    for pair in manifest.exemplars.windows(2) {
        assert!(pair[0].total_ns >= pair[1].total_ns, "exemplars unsorted");
    }
    let _ = std::fs::remove_file(&events);
}

#[test]
fn snapshot_counts_are_consistent_and_openmetrics_renders_valid() {
    with_run(RunOptions::default(), || {
        std::thread::scope(|scope| {
            for i in 0..16u64 {
                scope.spawn(move || simulate_request(i + 1));
            }
        });
        let mut shed = RequestTrace::begin();
        shed.set_status(TraceStatus::Shed);
        shed.finish();

        let snap = trace::snapshot();
        let total = snap
            .phases
            .iter()
            .find(|p| p.phase == "total")
            .expect("total entry");
        assert_eq!(total.count, 17);
        assert_eq!(total.counts.iter().sum::<u64>(), 17, "buckets lose counts");
        // Cumulative counts are monotone — the histogram invariant the
        // OpenMetrics exposition relies on.
        let cum = total.cumulative();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cum.last().expect("buckets"), 17);
        for p in &snap.phases {
            assert!(p.sum_s >= 0.0);
            assert_eq!(p.counts.iter().sum::<u64>(), p.count, "{}", p.phase);
        }
        let statuses: std::collections::BTreeMap<&str, u64> = snap
            .statuses
            .iter()
            .map(|(s, n)| (s.as_str(), *n))
            .collect();
        assert_eq!(statuses.get("ok"), Some(&16));
        assert_eq!(statuses.get("shed"), Some(&1));

        // The live exposition of this exact state passes the validator.
        let exposition = tfb_obs::openmetrics::render_live();
        tfb_obs::openmetrics::validate(&exposition).expect("valid OpenMetrics");
        assert!(exposition.contains("tfb_request_phase_seconds_bucket"));
        assert!(exposition.contains("tfb_slo_burn_rate"));
    });
}

#[test]
fn configured_slo_tracks_breaches_and_burn_rate() {
    let manifest = with_run(RunOptions::default(), || {
        // A zero threshold makes every request a breach; a 0.9 objective
        // gives a 10% budget, so an all-bad window burns at 10x.
        trace::configure_slo(SloConfig {
            threshold: Duration::ZERO,
            objective: 0.9,
        });
        for i in 0..10u64 {
            simulate_request(i + 1);
        }
        let slo = trace::snapshot().slo.expect("slo summary");
        assert_eq!(slo.threshold_ms, 0.0);
        assert_eq!(slo.objective, 0.9);
        assert_eq!(slo.total, 10);
        assert_eq!(slo.breaches, 10);
        assert!(
            (slo.burn_rate_1m - 10.0).abs() < 1e-6,
            "all-bad traffic must burn at 1/(1-objective): {}",
            slo.burn_rate_1m
        );
    });
    let slo = manifest.slo.as_ref().expect("manifest slo");
    assert_eq!(slo.breaches, 10);
    assert!(manifest.to_json().contains("\"breaches\": 10"));
}

#[test]
fn traces_outside_a_run_are_inert() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut t = RequestTrace::begin();
    assert!(!t.active());
    assert_eq!(t.id_hex(), None);
    t.mark(Phase::Parse);
    t.absorb_batch(1, 2, 3, 4, 5);
    t.finish();
    // Nothing was recorded: the next armed run starts from zero.
    drop(_guard);
    let manifest = with_run(RunOptions::default(), || {});
    assert!(manifest.slo.is_none(), "no requests -> no slo section");
    assert!(manifest.exemplars.is_empty());
}

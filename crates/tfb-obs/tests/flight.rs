//! Integration tests for the flight recorder: ring wrap-around, coherent
//! multi-thread snapshots, the panic-hook dump path, and dump rate
//! limiting. The recorder is process-global state, so every test
//! serializes on one lock and starts by re-`configure`-ing (which clears
//! all rings and resets the dump bookkeeping).

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;
use tfb_obs::flight::{self, FlightConfig};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfb_flight_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ring_overwrites_oldest_past_capacity() {
    let _guard = lock();
    flight::configure(FlightConfig {
        ring_capacity: 8,
        ..FlightConfig::default()
    });
    flight::set_armed(true);
    for i in 0..20 {
        flight::offer(&format!("line-{i}"));
    }
    flight::set_armed(false);
    let snap = flight::snapshot();
    let expected: Vec<String> = (12..20).map(|i| format!("line-{i}")).collect();
    assert_eq!(snap, expected, "ring keeps exactly the last 8, in order");
}

#[test]
fn disarmed_offers_capture_nothing() {
    let _guard = lock();
    flight::configure(FlightConfig::default());
    flight::set_armed(false);
    flight::offer("invisible");
    assert!(flight::snapshot().is_empty());
    assert!(flight::dump("nothing-armed").is_none(), "dump needs arming");
}

#[test]
fn snapshot_is_coherent_across_48_threads() {
    let _guard = lock();
    flight::configure(FlightConfig {
        ring_capacity: 64,
        ..FlightConfig::default()
    });
    flight::set_armed(true);
    const THREADS: usize = 48;
    const PER_THREAD: usize = 10;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    flight::offer(&format!("t{t}-{i}"));
                }
            });
        }
    });
    flight::set_armed(false);
    let snap = flight::snapshot();
    assert_eq!(snap.len(), THREADS * PER_THREAD, "nothing lost or doubled");
    // The merge is in global sequence order, so each thread's own lines
    // must appear in their emission order.
    for t in 0..THREADS {
        let mine: Vec<&String> = snap
            .iter()
            .filter(|l| l.starts_with(&format!("t{t}-")))
            .collect();
        let expected: Vec<String> = (0..PER_THREAD).map(|i| format!("t{t}-{i}")).collect();
        assert_eq!(mine.len(), PER_THREAD);
        for (got, want) in mine.iter().zip(&expected) {
            assert_eq!(*got, want, "thread {t} order preserved in the merge");
        }
    }
}

#[test]
fn panic_hook_dumps_from_a_worker_thread() {
    let _guard = lock();
    let root = temp_root("panic");
    flight::configure(FlightConfig {
        history_root: Some(root.clone()),
        context: vec![("command".to_string(), "test".to_string())],
        ..FlightConfig::default()
    });
    flight::set_armed(true);
    flight::install_panic_hook();
    flight::offer(r#"{"ev":"run_start","cores":1}"#);
    let worker = std::thread::Builder::new()
        .name("tfb-test-worker".to_string())
        .spawn(|| {
            flight::offer(r#"{"ev":"span","seq":1,"t_ns":10,"thread":7,"path":"x","ns":5}"#);
            panic!("boom in worker");
        })
        .expect("spawn");
    assert!(worker.join().is_err(), "the worker must have panicked");
    flight::set_armed(false);
    let (dumps, _) = flight::stats();
    assert_eq!(dumps, 1, "the panic left exactly one bundle behind");
    let entries = tfb_obs::history::load_postmortems(&root).expect("index parses");
    assert_eq!(entries.len(), 1);
    assert!(
        entries[0].reason.contains("panic") && entries[0].reason.contains("boom in worker"),
        "reason records the payload: {:?}",
        entries[0].reason
    );
    assert_eq!(entries[0].events, 2, "both ring events were captured");
    let dir = entries[0].dir(&root);
    let manifest =
        std::fs::read_to_string(dir.join("postmortem.manifest.json")).expect("manifest written");
    assert!(manifest.contains("tfb-postmortem/v1"), "{manifest}");
    assert!(manifest.contains("boom in worker"));
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events written");
    assert_eq!(events.lines().count(), 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dumps_are_rate_limited_under_sustained_breach() {
    let _guard = lock();
    let root = temp_root("ratelimit");
    flight::configure(FlightConfig {
        cooldown: Duration::from_secs(3600),
        history_root: Some(root.clone()),
        ..FlightConfig::default()
    });
    flight::set_armed(true);
    flight::offer("event under breach");
    let first = flight::dump("slo-burn-rate");
    assert!(first.is_some(), "the first dump always lands");
    for _ in 0..4 {
        assert!(
            flight::dump("slo-burn-rate").is_none(),
            "dumps inside the cooldown are suppressed"
        );
    }
    assert_eq!(flight::stats(), (1, 4));
    // A panic-path dump bypasses the cooldown.
    assert!(flight::dump_now("panic: urgent").is_some());
    assert_eq!(flight::stats(), (2, 4));
    flight::set_armed(false);
    let entries = tfb_obs::history::load_postmortems(&root).expect("index parses");
    assert_eq!(entries.len(), 2, "one rate-limited bundle plus one bypass");
    let _ = std::fs::remove_dir_all(&root);
}

//! The serving-side fleet: an LRU cache of resident [`ServableModel`]s
//! over a [`Registry`], with a generation watch for hot-swap.
//!
//! * **Residency.** Models load on first request (zero-copy mmap via
//!   [`crate::mmap`]) and stay resident up to `resident_cap`; beyond
//!   it, the least-recently-used model is evicted. Residents are
//!   `Arc`s, so eviction — or a hot swap — never tears a model out from
//!   under an in-flight request: the request keeps its clone, the cache
//!   just forgets its own.
//! * **Hot swap.** Every lookup cheaply stats `index.json` (debounced
//!   to once per [`REFRESH`]); a changed file stamp reloads the index.
//!   Resolution is name@label → blob id → resident-by-blob, so the
//!   moment a publish lands, lookups route to the new blob and the old
//!   one ages out of the cache. Blobs are immutable (content-addressed,
//!   rename-into-place), so a half-written artifact is never visible.
//! * **Metrics.** Hits/misses/evictions and resident count are kept as
//!   plain atomics (readable without arming obs) and mirrored to
//!   `registry/fleet/*` counters/gauges; cold-load latency lands in a
//!   `registry/fleet/cold_load_us` histogram plus a sample vec the
//!   bench harness reads for its p99 row. Per-model request counters
//!   (`registry/model/<name>/requests`) are leaked statics, the same
//!   pattern the serve shards use for their numbered series.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use tfb_artifact::ServableModel;

use crate::{resolve_in, Index, Registry, RegistryError, CANARY_LABEL, DEFAULT_LABEL};

/// How stale the cached index may get before a lookup re-stats
/// `index.json`. Bounds the hot-swap pickup latency.
pub const REFRESH: Duration = Duration::from_millis(10);

/// Fleet tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Most models resident at once; `0` is treated as 1.
    pub resident_cap: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { resident_cap: 8 }
    }
}

/// Why a fleet lookup failed.
#[derive(Debug)]
pub enum FleetError {
    /// No such model (or label) in the registry — HTTP 404.
    UnknownModel(String),
    /// The registry itself failed (index unreadable, blob missing or
    /// corrupt) — HTTP 500.
    Registry(RegistryError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownModel(r) => write!(f, "unknown model: {r}"),
            FleetError::Registry(e) => write!(f, "registry error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Point-in-time fleet cache statistics.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Lookups served by an already-resident model.
    pub hits: u64,
    /// Lookups that had to cold-load an artifact.
    pub misses: u64,
    /// Residents displaced by the LRU cap.
    pub evictions: u64,
    /// Models resident right now.
    pub resident: usize,
    /// Index generation the fleet last observed.
    pub generation: u64,
    /// Cold-load latencies, microseconds, in load order.
    pub cold_load_us: Vec<f64>,
}

impl FleetStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Resident {
    blob: String,
    model: Arc<ServableModel>,
    last_used: u64,
}

struct FleetState {
    index: Index,
    /// (len, mtime) of `index.json` at the last reload.
    stamp: Option<(u64, SystemTime)>,
    checked: Option<Instant>,
    resident: Vec<Resident>,
    tick: u64,
    cold_load_us: Vec<f64>,
}

/// A routable set of models: either a one-entry in-memory fleet (the
/// `tfb serve --model` alias) or an LRU cache over a [`Registry`].
pub struct Fleet {
    registry: Option<Registry>,
    cap: usize,
    /// Pinned models (single mode): name → model, never evicted.
    pinned: BTreeMap<String, Arc<ServableModel>>,
    default_ref: Option<(String, String)>,
    state: Mutex<FleetState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    request_counters: Mutex<BTreeMap<String, &'static tfb_obs::Counter>>,
}

impl Fleet {
    /// A fleet over a registry directory.
    pub fn open(registry: Registry, cfg: FleetConfig) -> Result<Fleet, RegistryError> {
        let index = registry.load_index()?;
        let stamp = file_stamp(&registry.index_path());
        // With exactly one prod-labeled model, the legacy `/forecast`
        // endpoint keeps working against it.
        let mut prods = index
            .models
            .iter()
            .filter(|(_, e)| e.labels.contains_key(DEFAULT_LABEL))
            .map(|(name, _)| name.clone());
        let default_ref = match (prods.next(), prods.next()) {
            (Some(name), None) => Some((name, DEFAULT_LABEL.to_string())),
            _ => None,
        };
        Ok(Fleet {
            registry: Some(registry),
            cap: cfg.resident_cap.max(1),
            pinned: BTreeMap::new(),
            default_ref,
            state: Mutex::new(FleetState {
                index,
                stamp,
                checked: Some(Instant::now()),
                resident: Vec::new(),
                tick: 0,
                cold_load_us: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            request_counters: Mutex::new(BTreeMap::new()),
        })
    }

    /// The one-entry in-memory fleet `tfb serve --model` materializes:
    /// `name@prod` (and the legacy `/forecast` default) resolve to the
    /// given model; nothing is ever loaded or evicted.
    pub fn single(name: &str, model: ServableModel) -> Fleet {
        let mut pinned = BTreeMap::new();
        pinned.insert(name.to_string(), Arc::new(model));
        Fleet {
            registry: None,
            cap: 1,
            pinned,
            default_ref: Some((name.to_string(), DEFAULT_LABEL.to_string())),
            state: Mutex::new(FleetState {
                index: Index::default(),
                stamp: None,
                checked: None,
                resident: Vec::new(),
                tick: 0,
                cold_load_us: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            request_counters: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether a registry (rather than a pinned singleton) backs this
    /// fleet — canary mirroring only makes sense when one does.
    pub fn has_registry(&self) -> bool {
        self.registry.is_some()
    }

    /// The `name@label` the legacy `/forecast` endpoint routes to, when
    /// there is an unambiguous one.
    pub fn default_ref(&self) -> Option<(String, String)> {
        self.default_ref.clone()
    }

    /// Every routable model name (pinned + indexed), sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pinned.keys().cloned().collect();
        let state = self.state.lock().expect("fleet state poisoned");
        names.extend(state.index.models.keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    /// Resolves `name@label` to a servable model: pinned, resident, or
    /// cold-loaded (mmap) into the LRU.
    pub fn get(&self, name: &str, label: &str) -> Result<Arc<ServableModel>, FleetError> {
        if label == DEFAULT_LABEL {
            if let Some(model) = self.pinned.get(name) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tfb_obs::counter!("registry/fleet/hits").add(1);
                return Ok(Arc::clone(model));
            }
        }
        let Some(registry) = &self.registry else {
            return Err(FleetError::UnknownModel(format!("{name}@{label}")));
        };
        let mut state = self.state.lock().expect("fleet state poisoned");
        self.maybe_refresh(registry, &mut state);
        let blob = match resolve_in(&state.index, name, label) {
            Ok(blob) => blob,
            Err(e @ (RegistryError::UnknownModel(_) | RegistryError::UnknownLabel { .. })) => {
                return Err(FleetError::UnknownModel(format!("{name}@{label} ({e})")))
            }
            Err(e) => return Err(FleetError::Registry(e)),
        };
        state.tick += 1;
        let tick = state.tick;
        if let Some(r) = state.resident.iter_mut().find(|r| r.blob == blob) {
            r.last_used = tick;
            let model = Arc::clone(&r.model);
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            tfb_obs::counter!("registry/fleet/hits").add(1);
            return Ok(model);
        }
        // Cold load, inside the lock: concurrent misses for the same
        // blob would otherwise both pay the load. Loads are rare (cache
        // misses only) and bounded by artifact size.
        let started = Instant::now();
        let (artifact, mapped) = crate::mmap::load_artifact(&registry.blob_path(&blob))
            .map_err(|e| FleetError::Registry(RegistryError::Artifact(e)))?;
        let model = Arc::new(
            ServableModel::from_artifact(artifact)
                .map_err(|e| FleetError::Registry(RegistryError::Artifact(e)))?,
        );
        let cold_us = started.elapsed().as_secs_f64() * 1e6;
        state.cold_load_us.push(cold_us);
        tfb_obs::histogram!("registry/fleet/cold_load_us").record(cold_us);
        tfb_obs::counter!("registry/fleet/misses").add(1);
        if mapped {
            tfb_obs::counter!("registry/fleet/mmap_loads").add(1);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        state.resident.push(Resident {
            blob,
            model: Arc::clone(&model),
            last_used: tick,
        });
        while state.resident.len() > self.cap {
            let (lru, _) = state
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_used)
                .expect("non-empty residents");
            state.resident.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            tfb_obs::counter!("registry/fleet/evictions").add(1);
        }
        tfb_obs::gauge!("registry/fleet/resident").set(state.resident.len() as f64);
        Ok(model)
    }

    /// The canary counterpart of `name`, if one is staged. Never counts
    /// toward hits/misses on the unstaged (common) path.
    pub fn canary(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.registry.as_ref()?;
        {
            let mut state = self.state.lock().expect("fleet state poisoned");
            if let Some(registry) = &self.registry {
                self.maybe_refresh(registry, &mut state);
            }
            resolve_in(&state.index, name, CANARY_LABEL).ok()?;
        }
        self.get(name, CANARY_LABEL).ok()
    }

    /// Forces an index reload on the next lookup (tests).
    pub fn invalidate(&self) {
        let mut state = self.state.lock().expect("fleet state poisoned");
        state.checked = None;
        state.stamp = None;
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> FleetStats {
        let state = self.state.lock().expect("fleet state poisoned");
        FleetStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: state.resident.len() + self.pinned.len(),
            generation: state.index.generation,
            cold_load_us: state.cold_load_us.clone(),
        }
    }

    /// The leaked per-model request counter
    /// (`registry/model/<sanitized-name>/requests`).
    pub fn request_counter(&self, name: &str) -> &'static tfb_obs::Counter {
        let mut counters = self
            .request_counters
            .lock()
            .expect("fleet counters poisoned");
        if let Some(c) = counters.get(name) {
            return c;
        }
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let metric = format!("registry/model/{sanitized}/requests");
        let counter: &'static tfb_obs::Counter = Box::leak(Box::new(tfb_obs::Counter::new(
            Box::leak(metric.into_boxed_str()),
        )));
        counters.insert(name.to_string(), counter);
        counter
    }

    /// Re-stats `index.json` at most once per [`REFRESH`]; a changed
    /// stamp reloads the index, which is all hot-swap needs — resident
    /// entries for re-pointed labels simply stop resolving and age out.
    fn maybe_refresh(&self, registry: &Registry, state: &mut FleetState) {
        if let Some(checked) = state.checked {
            if checked.elapsed() < REFRESH {
                return;
            }
        }
        state.checked = Some(Instant::now());
        let stamp = file_stamp(&registry.index_path());
        if stamp == state.stamp {
            return;
        }
        if let Ok(index) = registry.load_index() {
            if index.generation != state.index.generation {
                tfb_obs::counter!("registry/fleet/index_reloads").add(1);
            }
            state.index = index;
            state.stamp = stamp;
        }
    }
}

fn file_stamp(path: &std::path::Path) -> Option<(u64, SystemTime)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.len(), meta.modified().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact_bytes(horizon: usize) -> Vec<u8> {
        crate::test_support::trained_artifact(horizon).to_bytes()
    }

    fn temp_registry(tag: &str) -> Registry {
        let root = std::env::temp_dir().join(format!(
            "tfb_fleet_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Registry::open(&root).expect("open registry")
    }

    #[test]
    fn lru_eviction_honors_the_cap_and_counts() {
        let reg = temp_registry("lru");
        for h in [4, 6, 8] {
            reg.publish_bytes(&format!("m{h}"), "prod", &artifact_bytes(h))
                .expect("publish");
        }
        let root = reg.root().to_path_buf();
        let fleet = Fleet::open(reg, FleetConfig { resident_cap: 2 }).expect("fleet");
        fleet.get("m4", "prod").expect("m4");
        fleet.get("m6", "prod").expect("m6");
        fleet.get("m4", "prod").expect("m4 again");
        // Cap 2: loading m8 must evict m6 (m4 was used more recently).
        fleet.get("m8", "prod").expect("m8");
        let stats = fleet.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.cold_load_us.len(), 3);
        // m6 is gone: touching it is a fresh miss, evicting the LRU.
        fleet.get("m6", "prod").expect("m6 reload");
        assert_eq!(fleet.stats().misses, 4);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn hot_swap_routes_to_the_new_blob() {
        let reg = temp_registry("swap");
        let v1 = artifact_bytes(4);
        let v2 = artifact_bytes(8);
        reg.publish_bytes("m", "prod", &v1).expect("publish v1");
        let root = reg.root().to_path_buf();
        let fleet = Fleet::open(reg, FleetConfig { resident_cap: 4 }).expect("fleet");
        let before = fleet.get("m", "prod").expect("v1");
        assert_eq!(before.horizon(), 4);

        Registry::open(&root)
            .expect("reopen")
            .publish_bytes("m", "prod", &v2)
            .expect("publish v2");
        fleet.invalidate();
        let after = fleet.get("m", "prod").expect("v2");
        assert_eq!(after.horizon(), 8, "lookup must follow the new blob");
        // The old Arc is still fully usable: eviction/swap never tears
        // a model out from under a holder.
        assert_eq!(before.horizon(), 4);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn canary_resolves_only_when_staged() {
        let reg = temp_registry("canary");
        reg.publish_bytes("m", "prod", &artifact_bytes(4))
            .expect("publish");
        let root = reg.root().to_path_buf();
        let fleet = Fleet::open(reg, FleetConfig::default()).expect("fleet");
        assert!(fleet.canary("m").is_none());
        assert!(fleet.canary("ghost").is_none());
        Registry::open(&root)
            .expect("reopen")
            .publish_bytes("m", "canary", &artifact_bytes(8))
            .expect("stage");
        fleet.invalidate();
        let canary = fleet.canary("m").expect("staged canary");
        assert_eq!(canary.horizon(), 8);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn single_fleet_pins_and_defaults() {
        let artifact = tfb_artifact::ModelArtifact::from_bytes(&artifact_bytes(4)).expect("decode");
        let model = ServableModel::from_artifact(artifact).expect("servable");
        let fleet = Fleet::single("LR", model);
        assert_eq!(
            fleet.default_ref(),
            Some(("LR".to_string(), "prod".to_string()))
        );
        assert!(fleet.get("LR", "prod").is_ok());
        assert!(matches!(
            fleet.get("LR", "canary"),
            Err(FleetError::UnknownModel(_))
        ));
        assert!(matches!(
            fleet.get("other", "prod"),
            Err(FleetError::UnknownModel(_))
        ));
        assert_eq!(fleet.names(), vec!["LR".to_string()]);
        assert!(!fleet.has_registry());
    }
}

//! `tfb-registry`: a content-addressed store for trained model
//! artifacts, plus the serving-side fleet cache built on it.
//!
//! Layout (modeled on `.tfb-history/`):
//!
//! ```text
//! .tfb-registry/
//!   index.json            # tfb-registry/v1: generation + name → label → blob
//!   blobs/<fnv1a64>.tfba  # immutable content-addressed artifacts
//! ```
//!
//! * **Blobs are immutable.** A blob's filename is the FNV-1a64 hash of
//!   its bytes; publishing writes to a temp name and atomically renames
//!   into place, and an already-present blob is never rewritten. The
//!   artifact's own codec carries a second FNV-1a64 checksum inside the
//!   bytes, so [`Registry::fsck`] can detect bit rot two independent
//!   ways.
//! * **The index is one atomically-replaced document.** Every mutation
//!   (publish, promote, rollback) rewrites `index.json` via temp file +
//!   `rename`, bumping a monotonic `generation`. Readers therefore see
//!   either the old index or the new one, never a partial write — this
//!   is what makes hot-swap safe — and the fleet cache watches the file
//!   stamp to pick up new generations without a broker.
//! * **Labels are the deployment state machine.** Each model name maps
//!   labels (conventionally `prod` and `canary`) to blobs.
//!   `publish --label canary` stages a candidate, `promote` moves
//!   canary → prod (remembering the old prod in `previous`), `rollback`
//!   swaps `previous` back. Model names follow the benchmark's
//!   `dataset/method/horizon` convention but any `/`-separated id works.
//!
//! [`mmap`] holds the zero-copy loader; [`fleet`] the LRU of resident
//! models the server routes over.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use tfb_artifact::{format::fnv1a64, ArtifactError, ModelArtifact};
use tfb_json::JsonValue;

pub mod fleet;
pub mod mmap;

pub use fleet::{Fleet, FleetConfig, FleetError, FleetStats};

/// Index schema id written to (and required from) `index.json`.
pub const SCHEMA: &str = "tfb-registry/v1";

/// The label a bare `name` ref resolves to.
pub const DEFAULT_LABEL: &str = "prod";

/// The label canary candidates are staged under.
pub const CANARY_LABEL: &str = "canary";

/// Everything that can go wrong talking to a registry.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// `index.json` (or a blob name) is not valid `tfb-registry/v1`.
    Corrupt(String),
    /// The ref names a model the index does not hold.
    UnknownModel(String),
    /// The model exists but has no such label.
    UnknownLabel {
        /// Model name.
        model: String,
        /// The missing label.
        label: String,
    },
    /// The blob failed artifact-level validation.
    Artifact(ArtifactError),
    /// A name or label contains characters the store refuses.
    BadRef(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "io error: {e}"),
            RegistryError::Corrupt(m) => write!(f, "corrupt registry: {m}"),
            RegistryError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            RegistryError::UnknownLabel { model, label } => {
                write!(f, "model {model} has no label {label:?}")
            }
            RegistryError::Artifact(e) => write!(f, "artifact error: {e}"),
            RegistryError::BadRef(m) => write!(f, "bad model ref: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}

/// One model's deployment state: label → blob id, plus the blob the
/// last promotion displaced (what `rollback` restores).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelEntry {
    /// Label (e.g. `prod`, `canary`) → content-addressed blob id.
    pub labels: BTreeMap<String, String>,
    /// Blob id the previous promotion displaced, if any.
    pub previous: Option<String>,
}

/// The parsed `index.json`: a monotonic generation and every model's
/// deployment state, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Index {
    /// Bumped on every mutation; the fleet's hot-swap watch key.
    pub generation: u64,
    /// Model name → deployment state.
    pub models: BTreeMap<String, ModelEntry>,
}

/// What a publish did.
#[derive(Debug, Clone)]
pub struct PublishOutcome {
    /// Content-addressed id of the published blob.
    pub blob: String,
    /// Index generation after the publish.
    pub generation: u64,
    /// Blob id this label pointed at before, if it changed.
    pub replaced: Option<String>,
    /// Whether the blob's bytes were already in the store.
    pub deduplicated: bool,
}

/// What a garbage collection removed.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Blob ids deleted (referenced by no label and no `previous`).
    pub removed: Vec<String>,
    /// Blobs still referenced and kept.
    pub kept: usize,
}

/// Result of a full-store verification walk.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Blobs whose checksum and decode were verified.
    pub blobs_checked: usize,
    /// Index references resolved.
    pub refs_checked: usize,
    /// Human-readable description of every problem found.
    pub problems: Vec<String>,
}

impl FsckReport {
    /// `true` when the walk found nothing wrong.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Splits `name[@label]`, defaulting the label to [`DEFAULT_LABEL`].
pub fn parse_ref(r: &str) -> (&str, &str) {
    match r.split_once('@') {
        Some((name, label)) => (name, label),
        None => (r, DEFAULT_LABEL),
    }
}

fn check_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= 200
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '_' | '.' | '-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadRef(format!(
            "model name {name:?} (want [A-Za-z0-9/_.-]+)"
        )))
    }
}

fn check_label(label: &str) -> Result<(), RegistryError> {
    let ok = !label.is_empty()
        && label.len() <= 64
        && label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadRef(format!(
            "label {label:?} (want [A-Za-z0-9_-]+)"
        )))
    }
}

fn blob_id(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// A content-addressed artifact store rooted at a `.tfb-registry/`
/// directory. Cheap to construct; every operation re-reads the index
/// from disk, so concurrent publishers interleave at index-replacement
/// granularity.
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// Opens (creating directories as needed) the registry at `root`.
    pub fn open(root: &Path) -> Result<Registry, RegistryError> {
        std::fs::create_dir_all(root.join("blobs"))?;
        Ok(Registry {
            root: root.to_path_buf(),
        })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the index document.
    pub fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    /// Path a blob id resolves to.
    pub fn blob_path(&self, blob: &str) -> PathBuf {
        self.root.join("blobs").join(format!("{blob}.tfba"))
    }

    /// Reads and parses the index; a missing file is the empty index at
    /// generation 0.
    pub fn load_index(&self) -> Result<Index, RegistryError> {
        let path = self.index_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Index::default()),
            Err(e) => return Err(RegistryError::Io(e)),
        };
        parse_index(&text)
    }

    /// Serializes and atomically replaces the index (temp + rename).
    fn write_index(&self, index: &Index) -> Result<(), RegistryError> {
        let text = render_index(index);
        let tmp = self
            .root
            .join(format!("index.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.index_path())?;
        Ok(())
    }

    /// Publishes `bytes` as `name@label`: validates the artifact,
    /// stores the blob under its content hash (deduplicated), and
    /// atomically points the label at it.
    pub fn publish_bytes(
        &self,
        name: &str,
        label: &str,
        bytes: &[u8],
    ) -> Result<PublishOutcome, RegistryError> {
        check_name(name)?;
        check_label(label)?;
        // Corrupt blobs never enter the store: full structural decode
        // (including the codec's own checksum trailer) up front.
        ModelArtifact::from_bytes(bytes)?;
        let blob = blob_id(bytes);
        let path = self.blob_path(&blob);
        let deduplicated = path.exists();
        if !deduplicated {
            let tmp = self
                .root
                .join("blobs")
                .join(format!(".{blob}.tmp.{}", std::process::id()));
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, &path)?;
        }
        let mut index = self.load_index()?;
        let entry = index.models.entry(name.to_string()).or_default();
        let replaced = entry.labels.insert(label.to_string(), blob.clone());
        let replaced = replaced.filter(|old| *old != blob);
        index.generation += 1;
        self.write_index(&index)?;
        tfb_obs::counter!("registry/publishes").add(1);
        Ok(PublishOutcome {
            blob,
            generation: index.generation,
            replaced,
            deduplicated,
        })
    }

    /// [`publish_bytes`](Registry::publish_bytes) from an artifact file.
    pub fn publish_file(
        &self,
        name: &str,
        label: &str,
        path: &Path,
    ) -> Result<PublishOutcome, RegistryError> {
        let bytes = std::fs::read(path)?;
        self.publish_bytes(name, label, &bytes)
    }

    /// Resolves `name@label` to its blob id and path.
    pub fn resolve(&self, name: &str, label: &str) -> Result<(String, PathBuf), RegistryError> {
        let index = self.load_index()?;
        resolve_in(&index, name, label).map(|blob| {
            let path = self.blob_path(&blob);
            (blob, path)
        })
    }

    /// Promotes `name@from` to `name@to` (canary → prod by default):
    /// the `to` label takes the `from` blob, the displaced `to` blob is
    /// remembered in `previous`, and the `from` label is cleared.
    pub fn promote(&self, name: &str, from: &str, to: &str) -> Result<String, RegistryError> {
        check_label(from)?;
        check_label(to)?;
        let mut index = self.load_index()?;
        let entry = index
            .models
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let candidate = entry
            .labels
            .remove(from)
            .ok_or_else(|| RegistryError::UnknownLabel {
                model: name.to_string(),
                label: from.to_string(),
            })?;
        entry.previous = entry.labels.insert(to.to_string(), candidate.clone());
        index.generation += 1;
        self.write_index(&index)?;
        tfb_obs::counter!("registry/promotions").add(1);
        Ok(candidate)
    }

    /// Rolls `name@label` back to the blob the last promotion
    /// displaced, swapping `previous` so a second rollback undoes the
    /// first.
    pub fn rollback(&self, name: &str, label: &str) -> Result<String, RegistryError> {
        check_label(label)?;
        let mut index = self.load_index()?;
        let entry = index
            .models
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let previous = entry.previous.take().ok_or_else(|| {
            RegistryError::Corrupt(format!("model {name} has no previous blob to roll back to"))
        })?;
        entry.previous = entry.labels.insert(label.to_string(), previous.clone());
        index.generation += 1;
        self.write_index(&index)?;
        tfb_obs::counter!("registry/rollbacks").add(1);
        Ok(previous)
    }

    /// Deletes blobs referenced by no label and no `previous`.
    pub fn gc(&self) -> Result<GcReport, RegistryError> {
        let index = self.load_index()?;
        let mut live = std::collections::BTreeSet::new();
        for entry in index.models.values() {
            live.extend(entry.labels.values().cloned());
            live.extend(entry.previous.clone());
        }
        let mut report = GcReport::default();
        for blob in self.list_blobs()? {
            if live.contains(&blob) {
                report.kept += 1;
            } else {
                std::fs::remove_file(self.blob_path(&blob))?;
                report.removed.push(blob);
            }
        }
        Ok(report)
    }

    /// Walks the whole store: every blob's filename hash and embedded
    /// checksum re-verified, every blob structurally decoded, every
    /// index reference resolved. Returns the (possibly empty) problem
    /// list; `tfb registry fsck` exits non-zero unless it is empty.
    pub fn fsck(&self) -> Result<FsckReport, RegistryError> {
        let mut report = FsckReport::default();
        let index = self.load_index()?;
        let blobs: std::collections::BTreeSet<String> = self.list_blobs()?.into_iter().collect();
        for blob in &blobs {
            report.blobs_checked += 1;
            let bytes = match std::fs::read(self.blob_path(blob)) {
                Ok(b) => b,
                Err(e) => {
                    report
                        .problems
                        .push(format!("blob {blob}: unreadable: {e}"));
                    continue;
                }
            };
            let actual = blob_id(&bytes);
            if actual != *blob {
                report.problems.push(format!(
                    "blob {blob}: content hash mismatch (bytes hash to {actual})"
                ));
                // Don't also decode: the bytes are already known-bad.
                continue;
            }
            if let Err(e) = ModelArtifact::from_bytes(&bytes) {
                report.problems.push(format!("blob {blob}: {e}"));
            }
        }
        for (name, entry) in &index.models {
            for (label, blob) in &entry.labels {
                report.refs_checked += 1;
                if !blobs.contains(blob) {
                    report
                        .problems
                        .push(format!("{name}@{label}: dangling blob {blob}"));
                }
            }
            if let Some(prev) = &entry.previous {
                report.refs_checked += 1;
                if !blobs.contains(prev) {
                    report
                        .problems
                        .push(format!("{name} previous: dangling blob {prev}"));
                }
            }
        }
        Ok(report)
    }

    fn list_blobs(&self) -> Result<Vec<String>, RegistryError> {
        let mut blobs = Vec::new();
        for entry in std::fs::read_dir(self.root.join("blobs"))? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".tfba") {
                if stem.len() == 16 && stem.chars().all(|c| c.is_ascii_hexdigit()) {
                    blobs.push(stem.to_string());
                }
            }
        }
        blobs.sort();
        Ok(blobs)
    }
}

/// Resolves a ref inside an already-loaded index.
pub fn resolve_in(index: &Index, name: &str, label: &str) -> Result<String, RegistryError> {
    let entry = index
        .models
        .get(name)
        .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
    entry
        .labels
        .get(label)
        .cloned()
        .ok_or_else(|| RegistryError::UnknownLabel {
            model: name.to_string(),
            label: label.to_string(),
        })
}

fn render_index(index: &Index) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"generation\": {},", index.generation);
    out.push_str("  \"models\": {");
    for (mi, (name, entry)) in index.models.iter().enumerate() {
        if mi > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(&mut out, name);
        out.push_str(": {\"labels\": {");
        for (li, (label, blob)) in entry.labels.iter().enumerate() {
            if li > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, label);
            out.push_str(": ");
            push_json_string(&mut out, blob);
        }
        out.push('}');
        if let Some(prev) = &entry.previous {
            out.push_str(", \"previous\": ");
            push_json_string(&mut out, prev);
        }
        out.push('}');
    }
    if !index.models.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_index(text: &str) -> Result<Index, RegistryError> {
    let doc =
        JsonValue::parse(text).map_err(|e| RegistryError::Corrupt(format!("index.json: {e}")))?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(SCHEMA) => {}
        Some(other) => {
            return Err(RegistryError::Corrupt(format!(
                "index.json schema {other:?}, this build reads {SCHEMA:?}"
            )))
        }
        None => {
            return Err(RegistryError::Corrupt(
                "index.json has no schema field".to_string(),
            ))
        }
    }
    let generation = doc
        .get("generation")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| RegistryError::Corrupt("index.json has no generation".to_string()))?
        as u64;
    let mut models = BTreeMap::new();
    let entries = doc
        .get("models")
        .and_then(|v| v.as_object())
        .ok_or_else(|| RegistryError::Corrupt("index.json has no models object".to_string()))?;
    for (name, value) in entries {
        let mut entry = ModelEntry::default();
        let labels = value
            .get("labels")
            .and_then(|v| v.as_object())
            .ok_or_else(|| RegistryError::Corrupt(format!("model {name} has no labels")))?;
        for (label, blob) in labels {
            let blob = blob.as_str().ok_or_else(|| {
                RegistryError::Corrupt(format!("model {name} label {label}: blob not a string"))
            })?;
            entry.labels.insert(label.clone(), blob.to_string());
        }
        if let Some(prev) = value.get("previous") {
            let prev = prev.as_str().ok_or_else(|| {
                RegistryError::Corrupt(format!("model {name}: previous not a string"))
            })?;
            entry.previous = Some(prev.to_string());
        }
        models.insert(name.clone(), entry);
    }
    Ok(Index { generation, models })
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture: a small trained LR artifact over the synthetic
    //! ILI profile, parameterized by horizon so distinct-horizon
    //! fixtures hash to distinct blobs.
    use tfb_artifact::ModelArtifact;
    use tfb_data::{ChronoSplit, Normalization, Normalizer};

    pub fn trained_artifact(horizon: usize) -> ModelArtifact {
        let profile = tfb_datagen::profile_by_name("ILI").expect("ILI profile");
        let series = profile.generate(tfb_datagen::Scale::TINY);
        let split = ChronoSplit::split(&series, profile.split).expect("split");
        let norm = Normalizer::fit(&split.train, Normalization::ZScore);
        let normed = norm.apply(&series).expect("normalize");
        let train = normed.slice_rows(0..split.val_start);
        tfb_artifact::fit("LR", &train, 16, horizon, norm, "test".to_string(), None).expect("fit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact_bytes(horizon: usize) -> Vec<u8> {
        crate::test_support::trained_artifact(horizon).to_bytes()
    }

    fn temp_registry(tag: &str) -> Registry {
        let root = std::env::temp_dir().join(format!(
            "tfb_registry_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Registry::open(&root).expect("open registry")
    }

    #[test]
    fn publish_resolve_round_trip_and_dedup() {
        let reg = temp_registry("roundtrip");
        let bytes = artifact_bytes(4);
        let out = reg
            .publish_bytes("ILI/LR/4", "prod", &bytes)
            .expect("publish");
        assert!(!out.deduplicated);
        assert_eq!(out.generation, 1);
        let (blob, path) = reg.resolve("ILI/LR/4", "prod").expect("resolve");
        assert_eq!(blob, out.blob);
        assert_eq!(std::fs::read(path).expect("blob"), bytes);
        // Same bytes again: deduplicated, but the generation still bumps.
        let again = reg
            .publish_bytes("ILI/LR/4", "canary", &bytes)
            .expect("publish");
        assert!(again.deduplicated);
        assert_eq!(again.blob, out.blob);
        assert_eq!(reg.load_index().expect("index").generation, 2);
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn corrupt_bytes_never_enter_the_store() {
        let reg = temp_registry("reject");
        let mut bytes = artifact_bytes(4);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = reg
            .publish_bytes("ILI/LR/4", "prod", &bytes)
            .expect_err("corrupt publish must fail");
        assert!(matches!(err, RegistryError::Artifact(_)), "got {err:?}");
        assert!(reg.load_index().expect("index").models.is_empty());
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn promote_rollback_state_machine() {
        let reg = temp_registry("promote");
        let v1 = artifact_bytes(4);
        let v2 = artifact_bytes(8);
        let p1 = reg.publish_bytes("m", "prod", &v1).expect("publish v1");
        let p2 = reg.publish_bytes("m", "canary", &v2).expect("publish v2");
        assert_ne!(p1.blob, p2.blob);

        let promoted = reg.promote("m", "canary", "prod").expect("promote");
        assert_eq!(promoted, p2.blob);
        let index = reg.load_index().expect("index");
        let entry = &index.models["m"];
        assert_eq!(entry.labels.get("prod"), Some(&p2.blob));
        assert!(!entry.labels.contains_key("canary"), "canary label cleared");
        assert_eq!(entry.previous, Some(p1.blob.clone()));

        let restored = reg.rollback("m", "prod").expect("rollback");
        assert_eq!(restored, p1.blob);
        let entry = &reg.load_index().expect("index").models["m"];
        assert_eq!(entry.labels.get("prod"), Some(&p1.blob));
        // previous now remembers v2, so rollback is its own inverse.
        assert_eq!(entry.previous, Some(p2.blob.clone()));
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn gc_removes_only_unreferenced_blobs() {
        let reg = temp_registry("gc");
        let v1 = artifact_bytes(4);
        let v2 = artifact_bytes(8);
        let p1 = reg.publish_bytes("m", "prod", &v1).expect("publish");
        let p2 = reg.publish_bytes("m", "prod", &v2).expect("publish");
        // v1 is now unreferenced (prod moved, no previous recorded by
        // publish), v2 is live.
        let report = reg.gc().expect("gc");
        assert_eq!(report.removed, vec![p1.blob.clone()]);
        assert_eq!(report.kept, 1);
        assert!(reg.blob_path(&p2.blob).exists());
        assert!(!reg.blob_path(&p1.blob).exists());
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn fsck_detects_bit_rot_and_dangling_refs() {
        let reg = temp_registry("fsck");
        let bytes = artifact_bytes(4);
        let out = reg.publish_bytes("m", "prod", &bytes).expect("publish");
        assert!(reg.fsck().expect("fsck").ok(), "fresh store must be clean");

        // Flip one byte in the blob: both the filename hash and the
        // embedded checksum now disagree with the contents.
        let path = reg.blob_path(&out.blob);
        let mut rotted = std::fs::read(&path).expect("blob");
        let mid = rotted.len() / 2;
        rotted[mid] ^= 0x01;
        std::fs::write(&path, rotted).expect("write");
        let report = reg.fsck().expect("fsck");
        assert!(!report.ok());
        assert!(report.problems.iter().any(|p| p.contains("hash mismatch")));

        // Remove the blob entirely: the index ref dangles.
        std::fs::remove_file(&path).expect("remove");
        let report = reg.fsck().expect("fsck");
        assert!(report.problems.iter().any(|p| p.contains("dangling")));
        let _ = std::fs::remove_dir_all(reg.root());
    }

    #[test]
    fn index_round_trips_and_rejects_garbage() {
        let mut index = Index {
            generation: 7,
            ..Default::default()
        };
        index.models.insert(
            "ETTh1/LR/24".to_string(),
            ModelEntry {
                labels: BTreeMap::from([
                    ("prod".to_string(), "00112233445566aa".to_string()),
                    ("canary".to_string(), "ffeeddccbbaa9988".to_string()),
                ]),
                previous: Some("0123456789abcdef".to_string()),
            },
        );
        let text = render_index(&index);
        assert_eq!(parse_index(&text).expect("parse"), index);
        assert!(parse_index("{}").is_err());
        assert!(parse_index(
            "{\"schema\": \"tfb-registry/v9\", \"generation\": 0, \"models\": {}}"
        )
        .is_err());
        assert!(parse_index("not json").is_err());
    }

    #[test]
    fn refs_parse_with_default_label() {
        assert_eq!(parse_ref("a/b/24"), ("a/b/24", "prod"));
        assert_eq!(parse_ref("a/b/24@canary"), ("a/b/24", "canary"));
        assert!(check_name("ETTh1/LR/24").is_ok());
        assert!(check_name("no spaces").is_err());
        assert!(check_name("no@at").is_err());
        assert!(check_label("prod").is_ok());
        assert!(check_label("a/b").is_err());
    }
}

//! Zero-copy artifact loading: memory-map the blob and decode the
//! length-prefixed LE tensors straight out of the mapping, skipping the
//! intermediate heap copy a buffered `fs::read` pays for.
//!
//! Safety argument, in full:
//!
//! * The only unsafe code is the `mmap`/`munmap` syscall wrapper (the
//!   same direct-`extern "C"` idiom `tfb-serve` uses for `signal`) and
//!   the `slice::from_raw_parts` over the mapping. The mapping is
//!   `PROT_READ | MAP_PRIVATE`: the kernel hands us an immutable view,
//!   writes from other processes to the underlying file cannot tear it
//!   retroactively into this private mapping's already-faulted pages.
//! * Registry blobs are immutable by construction — they are
//!   content-addressed (`blobs/<fnv1a64>.tfba`), written to a temp name
//!   and atomically renamed into place, and never rewritten — so the
//!   pages backing a mapping never change for the blob's whole life.
//!   Publishing a new model version writes a *different* blob and flips
//!   the index, which is why hot-swap can never produce a torn read.
//! * [`Mmap`] owns the mapping (`munmap` on drop), derefs to `&[u8]`,
//!   and every byte the decoder touches goes through
//!   [`ModelArtifact::from_bytes`]'s bounds-checked cursor with an
//!   FNV-1a64 checksum trailer — a truncated or corrupted mapping is a
//!   structured decode error, never UB.
//!
//! When mmap is unavailable (non-unix, empty file, or the syscall
//! fails) the loader falls back to a buffered read. Both paths hand the
//! identical byte slice to the identical decoder, so the resulting
//! models — and every forecast they produce — are bit-identical; the
//! tests at the bottom prove it.

use std::path::Path;

use tfb_artifact::{ArtifactError, ModelArtifact};

/// A read-only private memory mapping of a whole file.
#[cfg(unix)]
pub struct Mmap {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// The mapping is immutable (PROT_READ) for its whole life, so sharing
// it across threads is no different from sharing a `&[u8]`.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    //! Direct syscall bindings (no libc crate in a zero-dependency
    //! build); the constants are the Linux/POSIX values.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
impl Mmap {
    /// Maps `file` (of size `len > 0`) read-only. Returns `None` when
    /// the kernel refuses — the caller falls back to a buffered read.
    fn map(file: &std::fs::File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr.is_null() || ptr as usize == usize::MAX {
            return None;
        }
        Some(Mmap {
            ptr: std::ptr::NonNull::new(ptr.cast::<u8>())?,
            len,
        })
    }
}

#[cfg(unix)]
impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // The mapping is len bytes long, read-only, and lives until
        // drop; the pages cannot change under us (see module docs).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

/// The bytes of an artifact file: memory-mapped when the platform
/// cooperates, a plain heap buffer otherwise. Derefs to `&[u8]` either
/// way — downstream code cannot tell (and must not care) which path
/// produced it.
pub enum ArtifactBytes {
    /// Zero-copy view of the file's pages.
    #[cfg(unix)]
    Mapped(Mmap),
    /// Buffered fallback (`fs::read`).
    Buffered(Vec<u8>),
}

impl ArtifactBytes {
    /// Whether the zero-copy path was taken (observability + tests).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            ArtifactBytes::Mapped(_) => true,
            ArtifactBytes::Buffered(_) => false,
        }
    }
}

impl std::ops::Deref for ArtifactBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            ArtifactBytes::Mapped(m) => m,
            ArtifactBytes::Buffered(v) => v,
        }
    }
}

/// Reads a whole file, preferring the zero-copy mapping. Empty files
/// take the buffered path (a zero-length mmap is an error by spec).
pub fn read_file(path: &Path) -> std::io::Result<ArtifactBytes> {
    #[cfg(unix)]
    {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len > 0 {
            if let Some(m) = Mmap::map(&file, len) {
                // The fd can close here: POSIX keeps the mapping alive
                // independently of the descriptor.
                return Ok(ArtifactBytes::Mapped(m));
            }
        }
        tfb_obs::counter!("registry/mmap_fallbacks").add(1);
    }
    Ok(ArtifactBytes::Buffered(std::fs::read(path)?))
}

/// Reads a whole file through the buffered path unconditionally — the
/// bit-identity tests diff this against [`read_file`].
pub fn read_file_buffered(path: &Path) -> std::io::Result<ArtifactBytes> {
    Ok(ArtifactBytes::Buffered(std::fs::read(path)?))
}

/// Loads an artifact via the zero-copy path (buffered fallback),
/// decoding the length-prefixed tensors in place over the mapping.
/// Returns the artifact and whether the mapping was used.
pub fn load_artifact(path: &Path) -> Result<(ModelArtifact, bool), ArtifactError> {
    let bytes = read_file(path).map_err(ArtifactError::Io)?;
    let artifact = ModelArtifact::from_bytes(&bytes)?;
    Ok((artifact, bytes.is_mapped()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_artifact::ServableModel;

    fn trained_artifact() -> ModelArtifact {
        crate::test_support::trained_artifact(4)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tfb_mmap_{tag}_{}", std::process::id()))
    }

    #[test]
    fn mapped_bytes_equal_buffered_bytes() {
        let path = temp_path("bytes");
        trained_artifact().save(&path).expect("save");
        let mapped = read_file(&path).expect("read");
        let buffered = read_file_buffered(&path).expect("read");
        assert_eq!(&mapped[..], &buffered[..]);
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "unix should take the mmap path");
        assert!(!buffered.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_forecasts_bit_identical_to_buffered() {
        let path = temp_path("forecast");
        let artifact = trained_artifact();
        artifact.save(&path).expect("save");

        let (via_map, _) = load_artifact(&path).expect("mmap load");
        let via_buf = ModelArtifact::from_bytes(&read_file_buffered(&path).expect("read"))
            .expect("buffered decode");
        assert_eq!(via_map.to_bytes(), via_buf.to_bytes(), "decode drifted");

        let m1 = ServableModel::from_artifact(via_map).expect("servable");
        let m2 = ServableModel::from_artifact(via_buf).expect("servable");
        let window: Vec<f64> = (0..m1.lookback() * m1.dim())
            .map(|i| (i as f64 * 0.37).sin() * 10.0)
            .collect();
        let f1 = m1.forecast(&window).expect("forecast");
        let f2 = m2.forecast(&window).expect("forecast");
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(a.to_bits(), b.to_bits(), "forecast not bit-identical");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_mapping_is_a_structured_error() {
        let path = temp_path("truncated");
        let bytes = trained_artifact().to_bytes();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
        let err = load_artifact(&path).expect_err("truncated blob must not decode");
        assert!(matches!(err, ArtifactError::Format(_)), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_falls_back_and_errors_cleanly() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").expect("write");
        let bytes = read_file(&path).expect("read");
        assert!(!bytes.is_mapped(), "empty file cannot be mapped");
        assert!(ModelArtifact::from_bytes(&bytes).is_err());
        let _ = std::fs::remove_file(&path);
    }
}

//! Bundled characteristic vectors and the dataset taxonomy built on them.
//!
//! The paper represents each univariate series by five indicators — trend,
//! seasonality, stationarity, shifting, transition — for coverage analysis
//! (Figure 5, via PCA to 2-D) and tags series with boolean characteristic
//! labels for the per-characteristic result groupings of Tables 4 and 6.

use crate::adf::adf_pvalue;
use crate::shifting::{shifting_severity, shifting_value};
use crate::strength::{seasonality_strength, trend_strength};
use crate::transition::transition_value;
use tfb_data::UniSeries;

/// The five univariate characteristics of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacteristicVector {
    /// Trend strength in [0, 1] (Definition 3).
    pub trend: f64,
    /// Seasonality strength in [0, 1] (Definition 4).
    pub seasonality: f64,
    /// ADF p-value in [0, 1]; stationary when ≤ 0.05 (Definition 5).
    pub adf_p: f64,
    /// Shifting value δ in (0, 1) (Algorithm 1).
    pub shifting: f64,
    /// Transition value Δ in [0, 1/3) (Algorithm 2).
    pub transition: f64,
}

/// Tag thresholds used for the boolean taxonomy. The paper's repository
/// classifies a characteristic as "present" when its indicator clears a
/// threshold; these defaults reproduce sensible marginals on the synthetic
/// archive (roughly half the series tagged per characteristic, as in
/// Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagThresholds {
    /// Minimum trend strength.
    pub trend: f64,
    /// Minimum seasonality strength.
    pub seasonality: f64,
    /// Minimum shifting severity `2|δ - 0.5|`.
    pub shifting: f64,
    /// Minimum transition value.
    pub transition: f64,
}

impl Default for TagThresholds {
    fn default() -> Self {
        TagThresholds {
            trend: 0.85,
            seasonality: 0.6,
            shifting: 0.25,
            transition: 0.015,
        }
    }
}

/// Boolean characteristic tags for one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tags {
    /// Trend present.
    pub trend: bool,
    /// Seasonality present.
    pub seasonality: bool,
    /// Stationary per ADF at 5%.
    pub stationary: bool,
    /// Distribution shift present.
    pub shifting: bool,
    /// Strong transition structure present.
    pub transition: bool,
}

impl CharacteristicVector {
    /// Computes the five characteristics of a raw series. `period_hint`
    /// feeds the STL decomposition (pass the frequency's natural period).
    pub fn compute(series: &[f64], period_hint: Option<usize>) -> CharacteristicVector {
        CharacteristicVector {
            trend: trend_strength(series, period_hint),
            seasonality: seasonality_strength(series, period_hint),
            adf_p: adf_pvalue(series),
            shifting: shifting_value(series),
            transition: transition_value(series),
        }
    }

    /// Computes the characteristics of a [`UniSeries`], using its
    /// frequency's natural period as the STL hint.
    pub fn of_series(series: &UniSeries) -> CharacteristicVector {
        let hint = match series.frequency.default_period() {
            0 | 1 => None,
            p => Some(p),
        };
        CharacteristicVector::compute(&series.values, hint)
    }

    /// The 5-element feature vector (Figure 5's PCA input), ordered
    /// trend, seasonality, stationarity (1 - p), shifting severity,
    /// transition.
    pub fn as_features(&self) -> [f64; 5] {
        [
            self.trend,
            self.seasonality,
            1.0 - self.adf_p,
            shifting_feature(self.shifting),
            self.transition,
        ]
    }

    /// Applies the boolean taxonomy.
    pub fn tag(&self, thresholds: TagThresholds) -> Tags {
        Tags {
            trend: self.trend >= thresholds.trend,
            seasonality: self.seasonality >= thresholds.seasonality,
            stationary: self.adf_p <= 0.05,
            shifting: (2.0 * (self.shifting - 0.5)).abs() >= thresholds.shifting,
            transition: self.transition >= thresholds.transition,
        }
    }
}

fn shifting_feature(delta: f64) -> f64 {
    (2.0 * (delta - 0.5)).abs().min(1.0)
}

/// Convenience: severity-style shifting feature of a raw series.
pub fn shifting_feature_of(series: &[f64]) -> f64 {
    shifting_severity(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};
    use tfb_datagen::{SeriesBuilder, TrendKind};

    fn uni(values: Vec<f64>, freq: Frequency) -> UniSeries {
        UniSeries::new("t", freq, Domain::Other, values).unwrap()
    }

    #[test]
    fn trending_series_is_tagged_trend() {
        let xs = SeriesBuilder::new(300, 1)
            .trend(TrendKind::Linear { slope: 0.5 })
            .noise(0.5)
            .build();
        let v = CharacteristicVector::compute(&xs, None);
        let t = v.tag(TagThresholds::default());
        assert!(t.trend, "trend {}", v.trend);
    }

    #[test]
    fn seasonal_series_is_tagged_seasonal() {
        let xs = SeriesBuilder::new(480, 2)
            .seasonal(24, 4.0)
            .noise(0.4)
            .build();
        let v = CharacteristicVector::compute(&xs, Some(24));
        let t = v.tag(TagThresholds::default());
        assert!(t.seasonality, "seasonality {}", v.seasonality);
    }

    #[test]
    fn shifted_series_is_tagged_shifting() {
        let xs = SeriesBuilder::new(400, 3)
            .level_shift(0.5, 12.0)
            .noise(0.8)
            .ar(0.5)
            .build();
        let v = CharacteristicVector::compute(&xs, None);
        let t = v.tag(TagThresholds::default());
        assert!(t.shifting, "shifting {}", v.shifting);
    }

    #[test]
    fn stationary_noise_is_tagged_stationary() {
        let xs = SeriesBuilder::new(500, 4).noise(1.0).build();
        let v = CharacteristicVector::compute(&xs, None);
        assert!(v.tag(TagThresholds::default()).stationary, "p {}", v.adf_p);
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let xs = SeriesBuilder::new(500, 5).ar(1.0).noise(1.0).build();
        let v = CharacteristicVector::compute(&xs, None);
        assert!(!v.tag(TagThresholds::default()).stationary, "p {}", v.adf_p);
    }

    #[test]
    fn of_series_uses_frequency_period() {
        let xs = SeriesBuilder::new(480, 6)
            .seasonal(24, 4.0)
            .noise(0.3)
            .build();
        let s = uni(xs, Frequency::Hourly);
        let v = CharacteristicVector::of_series(&s);
        assert!(v.seasonality > 0.6, "{}", v.seasonality);
    }

    #[test]
    fn features_are_unit_scaled() {
        let xs = SeriesBuilder::new(300, 7)
            .trend(TrendKind::Linear { slope: 0.2 })
            .seasonal(12, 1.0)
            .noise(0.8)
            .build();
        let f = CharacteristicVector::compute(&xs, Some(12)).as_features();
        for v in f {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}

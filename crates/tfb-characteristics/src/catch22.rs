//! A from-scratch Rust port of the catch22 feature set (Lubba et al. 2019,
//! "catch22: CAnonical Time-series CHaracteristics").
//!
//! TFB's correlation characteristic (Definition 8) represents each channel
//! of a multivariate series by its catch22 feature vector and averages the
//! pairwise Pearson correlations of those vectors. This module implements
//! all 22 features. Where the reference C implementation uses heavyweight
//! machinery (Welch spectra, spline detrending, exponential fits), we use
//! the closest simple estimator (raw periodogram, linear detrending, moment
//! matching); the features remain monotone transformations of the same
//! underlying quantities, which is what the correlation characteristic
//! needs. Each feature is exposed individually and via [`catch22_all`].
//!
//! All features z-score the input first, as the reference does for the
//! distribution-dependent features.

use tfb_math::acf::{acf_fft, autocorrelation, first_zero_crossing};
use tfb_math::fft::periodogram;
use tfb_math::stats::{mean, median, std_dev, zscore};

/// Number of features.
pub const N_FEATURES: usize = 22;

/// Feature names in output order (matching the reference ordering).
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "DN_HistogramMode_5",
    "DN_HistogramMode_10",
    "CO_f1ecac",
    "CO_FirstMin_ac",
    "CO_HistogramAMI_even_2_5",
    "CO_trev_1_num",
    "MD_hrv_classic_pnn40",
    "SB_BinaryStats_mean_longstretch1",
    "SB_TransitionMatrix_3ac_sumdiagcov",
    "PD_PeriodicityWang_th0_01",
    "CO_Embed2_Dist_tau_d_expfit_meandiff",
    "IN_AutoMutualInfoStats_40_gaussian_fmmi",
    "FC_LocalSimple_mean1_tauresrat",
    "DN_OutlierInclude_p_001_mdrmd",
    "DN_OutlierInclude_n_001_mdrmd",
    "SP_Summaries_welch_rect_area_5_1",
    "SB_BinaryStats_diff_longstretch0",
    "SB_MotifThree_quantile_hh",
    "SC_FluctAnal_2_rsrangefit_50_1_logi_prop_r1",
    "SC_FluctAnal_2_dfa_50_1_2_logi_prop_r1",
    "SP_Summaries_welch_rect_centroid",
    "FC_LocalSimple_mean3_stderr",
];

/// Computes all 22 features. Series shorter than 16 points return zeros
/// (the reference implementation NaNs them; zeros keep the downstream
/// Pearson correlations defined).
pub fn catch22_all(series: &[f64]) -> [f64; N_FEATURES] {
    let mut out = [0.0; N_FEATURES];
    if series.len() < 16 {
        return out;
    }
    let z = zscore(series);
    out[0] = histogram_mode(&z, 5);
    out[1] = histogram_mode(&z, 10);
    out[2] = f1ecac(&z);
    out[3] = first_min_ac(&z) as f64;
    out[4] = histogram_ami(&z, 2, 5);
    out[5] = trev_1_num(&z);
    out[6] = pnn40(series);
    out[7] = binary_stats_mean_longstretch1(&z) as f64;
    out[8] = crate::transition::transition_value(series);
    out[9] = periodicity_wang(&z) as f64;
    out[10] = embed2_dist_meandiff(&z);
    out[11] = auto_mutual_info_first_min(&z, 40) as f64;
    out[12] = local_simple_mean1_tauresrat(&z);
    out[13] = outlier_include_mdrmd(&z, true);
    out[14] = outlier_include_mdrmd(&z, false);
    out[15] = spectral_area_first_fifth(&z);
    out[16] = binary_stats_diff_longstretch0(&z) as f64;
    out[17] = motif_three_quantile_hh(&z);
    out[18] = fluct_anal_prop_r1(&z, FluctKind::RsRange);
    out[19] = fluct_anal_prop_r1(&z, FluctKind::Dfa);
    out[20] = spectral_centroid(&z);
    out[21] = local_simple_mean3_stderr(&z);
    out
}

/// Mode of an `nbins`-bin histogram over the data range.
pub fn histogram_mode(z: &[f64], nbins: usize) -> f64 {
    let lo = z.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo < 1e-300 {
        return 0.0;
    }
    let width = (hi - lo) / nbins as f64;
    let mut counts = vec![0usize; nbins];
    for &v in z {
        let b = (((v - lo) / width) as usize).min(nbins - 1);
        counts[b] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    lo + (best as f64 + 0.5) * width
}

/// First 1/e crossing of the ACF, linearly interpolated.
pub fn f1ecac(z: &[f64]) -> f64 {
    let thresh = 1.0 / std::f64::consts::E;
    let max_lag = z.len().saturating_sub(2);
    let mut prev = 1.0;
    for k in 1..=max_lag {
        let r = autocorrelation(z, k);
        if r < thresh {
            // Interpolate between k-1 and k.
            let f = (prev - thresh) / (prev - r).max(1e-12);
            return (k - 1) as f64 + f;
        }
        prev = r;
    }
    max_lag as f64
}

/// Lag of the first local minimum of the ACF.
pub fn first_min_ac(z: &[f64]) -> usize {
    let max_lag = (z.len() / 2).max(2).min(z.len().saturating_sub(2));
    let r = acf_fft(z, max_lag);
    for k in 1..max_lag {
        if r[k] < r[k - 1] && r[k] < r[k + 1] {
            return k;
        }
    }
    max_lag
}

/// Automutual information with even-width binning (`nbins` bins) at `lag`.
pub fn histogram_ami(z: &[f64], lag: usize, nbins: usize) -> f64 {
    let n = z.len();
    if n <= lag {
        return 0.0;
    }
    let lo = z.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo < 1e-300 {
        return 0.0;
    }
    let width = (hi - lo) / nbins as f64;
    let bin = |v: f64| (((v - lo) / width) as usize).min(nbins - 1);
    let m = n - lag;
    let mut joint = vec![0.0; nbins * nbins];
    let mut px = vec![0.0; nbins];
    let mut py = vec![0.0; nbins];
    for t in 0..m {
        let a = bin(z[t]);
        let b = bin(z[t + lag]);
        joint[a * nbins + b] += 1.0;
        px[a] += 1.0;
        py[b] += 1.0;
    }
    let mf = m as f64;
    let mut ami = 0.0;
    for a in 0..nbins {
        for b in 0..nbins {
            let pab = joint[a * nbins + b] / mf;
            if pab > 0.0 {
                ami += pab * (pab / ((px[a] / mf) * (py[b] / mf))).ln();
            }
        }
    }
    ami
}

/// Time-reversibility statistic: `mean((x_{t+1} - x_t)^3)`.
pub fn trev_1_num(z: &[f64]) -> f64 {
    if z.len() < 2 {
        return 0.0;
    }
    let diffs: Vec<f64> = z.windows(2).map(|w| (w[1] - w[0]).powi(3)).collect();
    mean(&diffs)
}

/// pNN40 from heart-rate-variability analysis: the proportion of successive
/// (raw-scale) differences exceeding 0.04 of the series' standard deviation
/// — the reference applies the 40 ms rule to z-scored data, which is
/// equivalent.
pub fn pnn40(raw: &[f64]) -> f64 {
    if raw.len() < 2 {
        return 0.0;
    }
    let sd = std_dev(raw);
    if sd < 1e-300 {
        return 0.0;
    }
    let count = raw
        .windows(2)
        .filter(|w| ((w[1] - w[0]) / sd).abs() > 0.04)
        .count();
    count as f64 / (raw.len() - 1) as f64
}

/// Longest run of consecutive values above the mean (z-scored: above 0).
pub fn binary_stats_mean_longstretch1(z: &[f64]) -> usize {
    longest_run(z.iter().map(|&v| v > 0.0))
}

/// Longest run of consecutive decreases.
pub fn binary_stats_diff_longstretch0(z: &[f64]) -> usize {
    longest_run(z.windows(2).map(|w| w[1] - w[0] < 0.0))
}

fn longest_run(bits: impl Iterator<Item = bool>) -> usize {
    let mut best = 0usize;
    let mut cur = 0usize;
    for b in bits {
        if b {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 0;
        }
    }
    best
}

/// Periodicity detection (Wang et al.): the first ACF peak beyond the first
/// zero crossing whose height exceeds 0.01, after linear detrending.
pub fn periodicity_wang(z: &[f64]) -> usize {
    let n = z.len();
    // Linear detrend.
    let tbar = (n as f64 - 1.0) / 2.0;
    let ybar = mean(z);
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &v) in z.iter().enumerate() {
        num += (t as f64 - tbar) * (v - ybar);
        den += (t as f64 - tbar) * (t as f64 - tbar);
    }
    let slope = if den > 1e-300 { num / den } else { 0.0 };
    let detrended: Vec<f64> = z
        .iter()
        .enumerate()
        .map(|(t, &v)| v - ybar - slope * (t as f64 - tbar))
        .collect();
    let zero = first_zero_crossing(&detrended);
    let max_lag = (n / 3).max(zero + 1);
    let r = acf_fft(&detrended, max_lag.min(n - 1));
    for k in (zero + 1)..r.len().saturating_sub(1) {
        if r[k] > r[k - 1] && r[k] >= r[k + 1] && r[k] > 0.01 {
            return k;
        }
    }
    0
}

/// Mean absolute change of consecutive point distances in the 2-D time-lag
/// embedding at lag `tau = first_zero_crossing` (simplified from the
/// reference's exponential-fit statistic; both summarize how quickly
/// embedding distances decorrelate).
pub fn embed2_dist_meandiff(z: &[f64]) -> f64 {
    let tau = first_zero_crossing(z).max(1);
    if z.len() <= tau + 2 {
        return 0.0;
    }
    let m = z.len() - tau;
    let mut dists = Vec::with_capacity(m - 1);
    for t in 0..(m - 1) {
        let dx = z[t + 1] - z[t];
        let dy = z[t + 1 + tau] - z[t + tau];
        dists.push((dx * dx + dy * dy).sqrt());
    }
    let diffs: Vec<f64> = dists.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    mean(&diffs)
}

/// First minimum of the Gaussian automutual information
/// `-0.5 ln(1 - rho_k^2)` over lags `1..=max_lag`.
pub fn auto_mutual_info_first_min(z: &[f64], max_lag: usize) -> usize {
    let max_lag = max_lag.min(z.len().saturating_sub(2)).max(1);
    let mut prev = f64::INFINITY;
    let mut prev_lag = 1usize;
    for k in 1..=max_lag {
        let rho: f64 = autocorrelation(z, k).clamp(-0.999999, 0.999999);
        let ami = -0.5 * (1.0 - rho * rho).ln();
        if ami > prev {
            return prev_lag;
        }
        prev = ami;
        prev_lag = k;
    }
    max_lag
}

/// Ratio of the residual decorrelation time to the original decorrelation
/// time under a "predict the previous value" local forecaster.
pub fn local_simple_mean1_tauresrat(z: &[f64]) -> f64 {
    if z.len() < 4 {
        return 1.0;
    }
    let residuals: Vec<f64> = z.windows(2).map(|w| w[1] - w[0]).collect();
    let tau_res = first_zero_crossing(&residuals) as f64;
    let tau_orig = first_zero_crossing(z) as f64;
    if tau_orig < 1.0 {
        return 1.0;
    }
    tau_res / tau_orig
}

/// Standard error of residuals from predicting each point with the mean of
/// the previous `3`.
pub fn local_simple_mean3_stderr(z: &[f64]) -> f64 {
    const W: usize = 3;
    if z.len() <= W + 1 {
        return 0.0;
    }
    let residuals: Vec<f64> = (W..z.len())
        .map(|t| z[t] - (z[t - 3] + z[t - 2] + z[t - 1]) / 3.0)
        .collect();
    std_dev(&residuals)
}

/// `DN_OutlierInclude_{p,n}_001_mdrmd`: sweep a threshold from 0 upward in
/// steps of 0.01 (on z-scored data); at each threshold collect the time
/// indices whose value exceeds it (positive variant) or whose negation does
/// (negative variant); record the median relative position of those
/// indices; return the median over thresholds, centered at 0.
pub fn outlier_include_mdrmd(z: &[f64], positive: bool) -> f64 {
    let n = z.len();
    if n < 4 {
        return 0.0;
    }
    let vals: Vec<f64> = if positive {
        z.to_vec()
    } else {
        z.iter().map(|v| -v).collect()
    };
    let vmax = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if vmax <= 0.0 {
        return 0.0;
    }
    let mut med_rel_positions = Vec::new();
    let mut thr = 0.0;
    while thr <= vmax {
        let idx: Vec<f64> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= thr)
            .map(|(i, _)| i as f64 / (n - 1) as f64)
            .collect();
        // Stop when fewer than 2% of points remain (reference behaviour).
        if (idx.len() as f64) < 0.02 * n as f64 {
            break;
        }
        med_rel_positions.push(median(&idx).expect("nonempty"));
        thr += 0.01;
    }
    if med_rel_positions.is_empty() {
        return 0.0;
    }
    median(&med_rel_positions).unwrap_or(0.5) - 0.5
}

/// Area of the first fifth of the (rectangular-window) power spectrum,
/// normalized by the total area.
pub fn spectral_area_first_fifth(z: &[f64]) -> f64 {
    let Ok(pg) = periodogram(z) else {
        return 0.0;
    };
    let total: f64 = pg.iter().sum();
    if total < 1e-300 {
        return 0.0;
    }
    let fifth = (pg.len() / 5).max(1);
    pg[..fifth].iter().sum::<f64>() / total
}

/// Centroid frequency (in radians) of the power spectrum.
pub fn spectral_centroid(z: &[f64]) -> f64 {
    let Ok(pg) = periodogram(z) else {
        return 0.0;
    };
    let total: f64 = pg.iter().sum();
    if total < 1e-300 {
        return 0.0;
    }
    let n = z.len() as f64;
    let weighted: f64 = pg
        .iter()
        .enumerate()
        .map(|(i, &p)| (i + 1) as f64 / n * std::f64::consts::TAU * p)
        .sum();
    weighted / total
}

/// Shannon entropy of 2-letter motifs over a 3-letter tertile alphabet.
pub fn motif_three_quantile_hh(z: &[f64]) -> f64 {
    let n = z.len();
    if n < 3 {
        return 0.0;
    }
    let order = tfb_math::stats::argsort(z);
    let mut symbol = vec![0usize; n];
    for (rank, &idx) in order.iter().enumerate() {
        symbol[idx] = (rank * 3 / n).min(2);
    }
    let mut counts = [0.0f64; 9];
    for w in symbol.windows(2) {
        counts[w[0] * 3 + w[1]] += 1.0;
    }
    let total = (n - 1) as f64;
    let mut h = 0.0;
    for &c in &counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Which fluctuation statistic to use in [`fluct_anal_prop_r1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluctKind {
    /// Range of the cumulative sum within each window (R/S-style).
    RsRange,
    /// RMS of linearly detrended cumulative sum (DFA).
    Dfa,
}

/// Fluctuation analysis: compute fluctuations over ~50 log-spaced window
/// sizes, fit two straight lines to the log-log curve splitting at every
/// candidate scale, and return the proportion of scales assigned to the
/// first regime at the best split (`..._logi_prop_r1` in catch22).
pub fn fluct_anal_prop_r1(z: &[f64], kind: FluctKind) -> f64 {
    let n = z.len();
    if n < 20 {
        return 0.0;
    }
    // Cumulative sum (profile).
    let mut profile = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &v in z {
        acc += v;
        profile.push(acc);
    }
    // ~50 log-spaced window sizes in [5, n/2].
    let smin = 5.0f64;
    let smax = (n / 2) as f64;
    if smax <= smin {
        return 0.0;
    }
    let mut sizes: Vec<usize> = (0..50)
        .map(|i| (smin * (smax / smin).powf(i as f64 / 49.0)).round() as usize)
        .collect();
    sizes.dedup();
    let mut log_s = Vec::new();
    let mut log_f = Vec::new();
    for &s in &sizes {
        if s < 4 || s > n {
            continue;
        }
        let mut fl = Vec::new();
        let mut start = 0;
        while start + s <= n {
            let w = &profile[start..start + s];
            let f = match kind {
                FluctKind::RsRange => {
                    let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    hi - lo
                }
                FluctKind::Dfa => {
                    // Linear detrend the profile window, RMS of residuals.
                    let m = s as f64;
                    let tbar = (m - 1.0) / 2.0;
                    let ybar = mean(w);
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (t, &v) in w.iter().enumerate() {
                        num += (t as f64 - tbar) * (v - ybar);
                        den += (t as f64 - tbar) * (t as f64 - tbar);
                    }
                    let slope = if den > 1e-300 { num / den } else { 0.0 };
                    let ss: f64 = w
                        .iter()
                        .enumerate()
                        .map(|(t, &v)| {
                            let r = v - ybar - slope * (t as f64 - tbar);
                            r * r
                        })
                        .sum();
                    (ss / m).sqrt()
                }
            };
            fl.push(f);
            start += s;
        }
        let avg = mean(&fl);
        if avg > 1e-300 {
            log_s.push((s as f64).ln());
            log_f.push(avg.ln());
        }
    }
    let k = log_s.len();
    if k < 6 {
        return 0.0;
    }
    // Two-regime linear fit: try every split, minimize total RSS.
    let rss_line = |xs: &[f64], ys: &[f64]| -> f64 {
        let xb = mean(xs);
        let yb = mean(ys);
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            num += (x - xb) * (y - yb);
            den += (x - xb) * (x - xb);
        }
        let slope = if den > 1e-300 { num / den } else { 0.0 };
        xs.iter()
            .zip(ys)
            .map(|(x, y)| {
                let r = y - yb - slope * (x - xb);
                r * r
            })
            .sum()
    };
    let mut best_split = 3;
    let mut best_rss = f64::INFINITY;
    for split in 3..(k - 2) {
        let rss =
            rss_line(&log_s[..split], &log_f[..split]) + rss_line(&log_s[split..], &log_f[split..]);
        if rss < best_rss {
            best_rss = rss;
            best_split = split;
        }
    }
    best_split as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn sine(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|t| (std::f64::consts::TAU * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn all_features_finite_on_varied_inputs() {
        for xs in [
            noise(300, 1),
            sine(300, 24.0),
            (0..300).map(|t| t as f64).collect::<Vec<_>>(),
            vec![1.0; 300],
        ] {
            let f = catch22_all(&xs);
            assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        }
    }

    #[test]
    fn short_series_return_zeros() {
        assert_eq!(catch22_all(&[1.0, 2.0]), [0.0; N_FEATURES]);
    }

    #[test]
    fn feature_names_are_22_and_unique() {
        let mut names = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn f1ecac_longer_memory_for_smoother_series() {
        let smooth = sine(400, 100.0);
        let rough = noise(400, 2);
        assert!(f1ecac(&zscore(&smooth)) > f1ecac(&zscore(&rough)));
    }

    #[test]
    fn first_min_ac_finds_half_period() {
        let xs = sine(480, 24.0);
        let m = first_min_ac(&zscore(&xs));
        assert!((10..=14).contains(&m), "first min {m}");
    }

    #[test]
    fn periodicity_wang_finds_period() {
        let xs = sine(480, 24.0);
        let p = periodicity_wang(&zscore(&xs));
        assert!((22..=26).contains(&p), "period {p}");
    }

    #[test]
    fn trev_is_zero_for_symmetric_series() {
        let xs = sine(600, 24.0);
        assert!(trev_1_num(&zscore(&xs)).abs() < 0.02);
    }

    #[test]
    fn longstretch_mean_counts_runs() {
        // +,+,+,-,-,+ -> longest stretch above 0 is 3.
        let z = [1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        assert_eq!(binary_stats_mean_longstretch1(&z), 3);
    }

    #[test]
    fn longstretch_diff_counts_decreases() {
        let z = [5.0, 4.0, 3.0, 2.0, 3.0, 2.0];
        assert_eq!(binary_stats_diff_longstretch0(&z), 3);
    }

    #[test]
    fn ami_higher_for_structured_series() {
        let s = sine(500, 20.0);
        let r = noise(500, 3);
        assert!(histogram_ami(&zscore(&s), 2, 5) > histogram_ami(&zscore(&r), 2, 5));
    }

    #[test]
    fn spectral_area_concentrates_for_slow_signals() {
        let slow = sine(512, 128.0);
        let fast = sine(512, 4.0);
        assert!(spectral_area_first_fifth(&zscore(&slow)) > 0.9);
        assert!(spectral_area_first_fifth(&zscore(&fast)) < 0.5);
    }

    #[test]
    fn spectral_centroid_orders_frequencies() {
        let slow = sine(512, 128.0);
        let fast = sine(512, 8.0);
        assert!(spectral_centroid(&zscore(&fast)) > spectral_centroid(&zscore(&slow)));
    }

    #[test]
    fn outlier_include_signs_track_asymmetry() {
        // Positive spikes late in the series.
        let mut xs = noise(400, 4);
        for t in 350..400 {
            xs[t] += 4.0;
        }
        let z = zscore(&xs);
        assert!(outlier_include_mdrmd(&z, true) > 0.1);
    }

    #[test]
    fn pnn40_all_large_jumps() {
        let xs: Vec<f64> = (0..100)
            .map(|t| if t % 2 == 0 { 0.0 } else { 10.0 })
            .collect();
        assert!((pnn40(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fluct_anal_in_unit_interval() {
        for kind in [FluctKind::RsRange, FluctKind::Dfa] {
            let v = fluct_anal_prop_r1(&zscore(&noise(500, 5)), kind);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn motif_entropy_higher_for_noise() {
        let r = motif_three_quantile_hh(&zscore(&noise(500, 6)));
        let t = motif_three_quantile_hh(&zscore(&(0..500).map(|t| t as f64).collect::<Vec<_>>()));
        assert!(r > t, "{r} vs {t}");
    }
}

//! Trend and seasonality strength (Definitions 3 and 4).
//!
//! Given the STL decomposition `X = T + S + R`,
//!
//! ```text
//! Trend_Strength       = max(0, 1 - var(R) / var(X - S))
//! Seasonality_Strength = max(0, 1 - var(R) / var(X - T))
//! ```
//!
//! Both lie in [0, 1]; values near 1 indicate a dominant component.

use tfb_math::fft::dominant_period;
use tfb_math::stats::variance;
use tfb_math::stl::{stl, trend_only, Decomposition};

/// Picks the decomposition period: the caller's hint when valid, otherwise
/// the periodogram's dominant period, otherwise `None` (non-seasonal).
fn choose_period(series: &[f64], hint: Option<usize>) -> Option<usize> {
    let n = series.len();
    let valid = |p: usize| p >= 2 && n >= 2 * p;
    if let Some(p) = hint {
        if valid(p) {
            return Some(p);
        }
    }
    dominant_period(series).filter(|&p| valid(p))
}

/// Decomposes with STL when a usable period exists, falling back to a
/// Loess trend-only decomposition otherwise.
pub fn decompose(series: &[f64], period_hint: Option<usize>) -> Option<Decomposition> {
    if series.len() < 8 {
        return None;
    }
    match choose_period(series, period_hint) {
        Some(p) => stl(series, p).ok().or_else(|| trend_only(series).ok()),
        None => trend_only(series).ok(),
    }
}

/// Trend strength per Definition 3. Returns 0.0 for series too short to
/// decompose.
pub fn trend_strength(series: &[f64], period_hint: Option<usize>) -> f64 {
    if variance(series) < 1e-12 {
        return 0.0;
    }
    let Some(d) = decompose(series, period_hint) else {
        return 0.0;
    };
    // X - S = T + R
    let deseason: Vec<f64> = series.iter().zip(&d.seasonal).map(|(x, s)| x - s).collect();
    strength_ratio(&d.remainder, &deseason)
}

/// Seasonality strength per Definition 4. Returns 0.0 for series too short
/// to decompose or without a detectable period.
pub fn seasonality_strength(series: &[f64], period_hint: Option<usize>) -> f64 {
    if variance(series) < 1e-12 {
        return 0.0;
    }
    let Some(d) = decompose(series, period_hint) else {
        return 0.0;
    };
    if d.period < 2 {
        return 0.0;
    }
    // X - T = S + R
    let detrended: Vec<f64> = series.iter().zip(&d.trend).map(|(x, t)| x - t).collect();
    strength_ratio(&d.remainder, &detrended)
}

fn strength_ratio(remainder: &[f64], denom_series: &[f64]) -> f64 {
    let denom = variance(denom_series);
    if denom < 1e-300 {
        return 0.0;
    }
    (1.0 - variance(remainder) / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, period: usize, slope: f64, amp: f64, noise_amp: f64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let noise = noise_amp * ((t as f64 * 12.9898).sin() * 43758.5453).fract();
                slope * t as f64
                    + amp * (std::f64::consts::TAU * t as f64 / period as f64).sin()
                    + noise
            })
            .collect()
    }

    #[test]
    fn strong_trend_is_detected() {
        let xs = synth(200, 12, 1.0, 0.0, 0.5);
        let ts = trend_strength(&xs, None);
        assert!(ts > 0.9, "trend strength {ts}");
    }

    #[test]
    fn strong_seasonality_is_detected() {
        let xs = synth(240, 24, 0.0, 5.0, 0.5);
        let ss = seasonality_strength(&xs, Some(24));
        assert!(ss > 0.8, "seasonality strength {ss}");
    }

    #[test]
    fn noise_has_weak_trend_and_seasonality() {
        let xs: Vec<f64> = (0..300)
            .map(|t| ((t as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5)
            .collect();
        assert!(trend_strength(&xs, None) < 0.5);
        assert!(seasonality_strength(&xs, Some(24)) < 0.5);
    }

    #[test]
    fn trend_strength_orders_series_correctly() {
        let strong = synth(200, 12, 1.0, 1.0, 1.0);
        let weak = synth(200, 12, 0.02, 1.0, 1.0);
        assert!(trend_strength(&strong, None) > trend_strength(&weak, None));
    }

    #[test]
    fn seasonality_hint_is_used() {
        let xs = synth(240, 24, 0.0, 5.0, 0.3);
        let with_hint = seasonality_strength(&xs, Some(24));
        assert!(with_hint > 0.8);
    }

    #[test]
    fn short_series_yield_zero() {
        assert_eq!(trend_strength(&[1.0, 2.0, 3.0], None), 0.0);
        assert_eq!(seasonality_strength(&[1.0, 2.0, 3.0], None), 0.0);
    }

    #[test]
    fn constant_series_yield_zero() {
        let xs = vec![5.0; 100];
        assert_eq!(trend_strength(&xs, None), 0.0);
        assert_eq!(seasonality_strength(&xs, Some(10)), 0.0);
    }

    #[test]
    fn strengths_are_in_unit_interval() {
        let xs = synth(300, 24, 0.3, 2.0, 1.0);
        for v in [
            trend_strength(&xs, None),
            seasonality_strength(&xs, Some(24)),
        ] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}

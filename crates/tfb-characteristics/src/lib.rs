//! The six TFB time-series characteristics (Section 3 of the paper):
//!
//! * **Trend strength** and **seasonality strength** from an STL
//!   decomposition (Definitions 3–4) — [`strength`];
//! * **Stationarity** from the Augmented Dickey–Fuller test (Definition 5)
//!   — [`adf`];
//! * **Shifting** (Algorithm 1) — [`shifting`];
//! * **Transition** (Algorithm 2) — [`transition`];
//! * **Correlation** across channels via catch22 features and Pearson
//!   coefficients (Definition 8, Equations 4–6) — [`mod@correlation`], with the
//!   from-scratch catch22 port in [`catch22`].
//!
//! [`vector::CharacteristicVector`] bundles the five univariate
//! characteristics into the feature representation used by the paper's
//! dataset-coverage analyses (Figure 5) and per-characteristic result
//! groupings (Table 6).

// Index-based loops mirror the published algorithm pseudo-code
// (Algorithms 1-2, catch22 reference) on purpose.
#![allow(clippy::needless_range_loop)]
pub mod adf;
pub mod catch22;
pub mod correlation;
pub mod shifting;
pub mod strength;
pub mod transition;
pub mod vector;

pub use adf::{adf_pvalue, adf_statistic, is_stationary};
pub use correlation::correlation;
pub use shifting::shifting_value;
pub use strength::{seasonality_strength, trend_strength};
pub use transition::transition_value;
pub use vector::CharacteristicVector;

//! The correlation characteristic of multivariate series (Definition 8,
//! Equations 4–6).
//!
//! Each channel is represented by its catch22 feature vector; the
//! characteristic is `mean(P) + 1 / (1 + var(P))` where `P` collects the
//! pairwise Pearson correlation coefficients between those feature vectors.

use crate::catch22::catch22_all;
use tfb_data::MultiSeries;
use tfb_math::stats::{mean, pearson, variance};

/// The correlation characteristic for a multivariate series.
///
/// Single-channel series return 0.0 (no pairs to correlate).
pub fn correlation(series: &MultiSeries) -> f64 {
    let dim = series.dim();
    if dim < 2 {
        return 0.0;
    }
    // Equation 4: F = Catch22(X), one feature vector per channel.
    let features: Vec<[f64; 22]> = (0..dim).map(|c| catch22_all(&series.channel(c))).collect();
    correlation_from_features(&features)
}

/// Equations 5–6 applied to precomputed per-channel feature vectors.
pub fn correlation_from_features(features: &[[f64; 22]]) -> f64 {
    let n = features.len();
    if n < 2 {
        return 0.0;
    }
    let mut pccs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            if let Ok(r) = pearson(&features[i], &features[j]) {
                pccs.push(r);
            }
        }
    }
    if pccs.is_empty() {
        return 0.0;
    }
    mean(&pccs) + 1.0 / (1.0 + variance(&pccs))
}

/// Mean pairwise Pearson correlation of the raw channels — the simpler
/// "instantaneous" correlation used by Figure 10's dataset ordering.
pub fn raw_channel_correlation(series: &MultiSeries) -> f64 {
    let dim = series.dim();
    if dim < 2 {
        return 0.0;
    }
    let channels: Vec<Vec<f64>> = series.to_channels();
    let mut acc = 0.0;
    let mut count = 0usize;
    for i in 0..dim {
        for j in (i + 1)..dim {
            if let Ok(r) = pearson(&channels[i], &channels[j]) {
                acc += r;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfb_data::{Domain, Frequency};
    use tfb_datagen::components::{correlated_channels, SeriesBuilder};

    fn make(corr: f64, seed: u64) -> MultiSeries {
        let factor = SeriesBuilder::new(600, seed)
            .seasonal(48, 2.0)
            .ar(0.7)
            .build();
        let chans = correlated_channels(&[factor], 5, corr, 0.5, 0.5, seed + 1);
        MultiSeries::from_channels("t", Frequency::Hourly, Domain::Traffic, &chans).unwrap()
    }

    #[test]
    fn correlated_channels_score_higher() {
        let strong = correlation(&make(0.95, 10));
        let weak = correlation(&make(0.05, 10));
        assert!(strong > weak, "{strong} vs {weak}");
    }

    #[test]
    fn raw_correlation_orders_too() {
        let strong = raw_channel_correlation(&make(0.95, 11));
        let weak = raw_channel_correlation(&make(0.05, 11));
        assert!(strong > 0.7);
        assert!(weak < strong);
    }

    #[test]
    fn single_channel_returns_zero() {
        let s = MultiSeries::from_channels(
            "u",
            Frequency::Daily,
            Domain::Web,
            &[vec![1.0, 2.0, 3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(correlation(&s), 0.0);
        assert_eq!(raw_channel_correlation(&s), 0.0);
    }

    #[test]
    fn identical_channels_maximize_feature_correlation() {
        let base: Vec<f64> = (0..300)
            .map(|t| (t as f64 * 0.21).sin() + 0.01 * t as f64)
            .collect();
        let s = MultiSeries::from_channels(
            "dup",
            Frequency::Hourly,
            Domain::Energy,
            &[base.clone(), base.clone(), base],
        )
        .unwrap();
        // Identical feature vectors: all PCCs = 1, variance 0 -> mean + 1 = 2.
        let c = correlation(&s);
        assert!((c - 2.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn correlation_from_features_handles_empty() {
        assert_eq!(correlation_from_features(&[]), 0.0);
        assert_eq!(correlation_from_features(&[[0.0; 22]]), 0.0);
    }
}

//! The transition characteristic (Algorithm 2 of the paper), a port of
//! catch22's `SB_TransitionMatrix_3ac_sumdiagcov`.
//!
//! The series is downsampled at the stride of the ACF's first zero
//! crossing, coarse-grained into a 3-letter alphabet by value tertiles,
//! and summarized by the trace of the covariance matrix of the 3×3 symbol
//! transition matrix. The result lies in (0, 1/3); larger values indicate
//! more regular, identifiable structure (clear trend and/or periodicity).

use tfb_math::acf::first_zero_crossing;
use tfb_math::stats::argsort;

/// Algorithm 2: the transition value Δ ∈ [0, 1/3).
///
/// Degenerate inputs (too short after downsampling) return 0.0.
pub fn transition_value(series: &[f64]) -> f64 {
    // Step 1: downsampling stride = first zero crossing of the ACF.
    // Trend-dominated series have very late zero crossings; cap the stride
    // so the downsampled series keeps at least ~20 points (the reference
    // implementation NaNs these, which would lose exactly the trended
    // series the characteristic is meant to flag).
    let tau = first_zero_crossing(series)
        .max(1)
        .min((series.len() / 20).max(1));
    // Step 2: downsample.
    let y: Vec<f64> = series.iter().step_by(tau).copied().collect();
    let tp = y.len();
    if tp < 6 {
        return 0.0;
    }
    // Step 3–6: coarse-grain into tertile symbols 0/1/2 via the rank of
    // each element (argsort gives sorted positions; invert to ranks).
    let order = argsort(&y);
    let mut symbol = vec![0usize; tp];
    for (rank, &idx) in order.iter().enumerate() {
        symbol[idx] = (rank * 3 / tp).min(2);
    }
    // Steps 7–11: empirical transition matrix between consecutive symbols.
    let mut m = [[0.0f64; 3]; 3];
    for w in symbol.windows(2) {
        m[w[0]][w[1]] += 1.0;
    }
    let transitions = (tp - 1) as f64;
    for row in m.iter_mut() {
        for v in row.iter_mut() {
            *v /= transitions;
        }
    }
    // Steps 12–13: trace of the covariance matrix between the columns of M.
    // cov(col_a, col_a) summed over a = sum of column variances.
    let mut total = 0.0;
    for a in 0..3 {
        let col = [m[0][a], m[1][a], m[2][a]];
        let mean = (col[0] + col[1] + col[2]) / 3.0;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
        total += var;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn monotone_trend_has_high_transition() {
        let xs: Vec<f64> = (0..300).map(|t| t as f64).collect();
        let v = transition_value(&xs);
        // A pure trend visits 0→0…0→1→1…1→2…: transitions concentrate on
        // the diagonal, so column variances are large.
        assert!(v > 0.02, "transition {v}");
    }

    #[test]
    fn white_noise_has_low_transition() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..600).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v = transition_value(&xs);
        assert!(v < 0.01, "transition {v}");
    }

    #[test]
    fn trend_beats_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let noise: Vec<f64> = (0..400).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let trend: Vec<f64> = (0..400).map(|t| 0.1 * t as f64 + noise[t] * 0.1).collect();
        assert!(transition_value(&trend) > transition_value(&noise));
    }

    #[test]
    fn value_is_below_one_third() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..257).map(|_| rng.gen_range(0.0..10.0)).collect();
            let v = transition_value(&xs);
            assert!((0.0..1.0 / 3.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn short_series_return_zero() {
        assert_eq!(transition_value(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(transition_value(&[]), 0.0);
    }

    #[test]
    fn is_deterministic() {
        let xs: Vec<f64> = (0..200).map(|t| ((t * 37) % 101) as f64).collect();
        assert_eq!(transition_value(&xs), transition_value(&xs));
    }
}

//! The shifting characteristic (Algorithm 1 of the paper).
//!
//! Shifting quantifies distribution drift: z-score the series, sweep `m`
//! thresholds between the minimum and maximum, record the *median index* of
//! the points exceeding each threshold, min-max normalize those medians,
//! and return their median. Values near 1 mean the large values cluster
//! late in the series — an upward level/distribution shift; values near 0
//! mean they cluster early. A balanced series yields ~0.5, and the paper's
//! usage treats larger |δ − 0.5| deviations as "more shifted"; we expose
//! both the raw δ and the centered severity.

use tfb_math::stats::{median, min_max_normalize, zscore};

/// Number of thresholds `m` in Algorithm 1.
pub const DEFAULT_THRESHOLDS: usize = 100;

/// Algorithm 1: the raw shifting value δ ∈ (0, 1).
///
/// Returns 0.5 (perfectly balanced, i.e. no shift) for degenerate inputs
/// (constant or near-empty series).
pub fn shifting_value(series: &[f64]) -> f64 {
    shifting_value_with(series, DEFAULT_THRESHOLDS)
}

/// Algorithm 1 with an explicit threshold count `m`.
pub fn shifting_value_with(series: &[f64], m: usize) -> f64 {
    let t = series.len();
    if t < 3 || m == 0 {
        return 0.5;
    }
    // Step 1: z-score normalize.
    let z = zscore(series);
    let z_min = z.iter().cloned().fold(f64::INFINITY, f64::min);
    let z_max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (z_max - z_min).abs() < 1e-300 {
        return 0.5;
    }
    // Steps 3–6: for each threshold, the median index of exceedances.
    let mut medians = Vec::with_capacity(m);
    for i in 0..m {
        let s_i = z_min + i as f64 * (z_max - z_min) / m as f64;
        let exceed: Vec<f64> = z
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > s_i)
            .map(|(j, _)| j as f64)
            .collect();
        if exceed.is_empty() {
            continue;
        }
        medians.push(median(&exceed).expect("nonempty exceedance set"));
    }
    if medians.len() < 2 {
        return 0.5;
    }
    // Step 7: min-max normalize the medians; step 8: their median.
    let normalized = min_max_normalize(&medians);
    median(&normalized).unwrap_or(0.5)
}

/// Severity of shifting: `2 |δ − 0.5|`, in [0, 1]. The paper's narrative
/// ("as the value approaches 1, the degree of shifting becomes more
/// severe") refers to upward drift; severity treats both directions
/// symmetrically, which the per-characteristic dataset rankings use.
pub fn shifting_severity(series: &[f64]) -> f64 {
    (2.0 * (shifting_value(series) - 0.5)).abs().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_shift_pushes_value_above_half() {
        // Low regime then high regime: exceedances of high thresholds all
        // live in the second half.
        let mut xs = vec![0.0; 100];
        xs.extend(vec![10.0; 100]);
        // Add a hair of jitter so the z-scores are not two-valued.
        for (i, v) in xs.iter_mut().enumerate() {
            *v += (i as f64 * 0.7).sin() * 0.01;
        }
        let d = shifting_value(&xs);
        assert!(d > 0.7, "delta {d}");
    }

    #[test]
    fn downward_shift_pulls_value_below_half() {
        let mut xs = vec![10.0; 100];
        xs.extend(vec![0.0; 100]);
        for (i, v) in xs.iter_mut().enumerate() {
            *v += (i as f64 * 0.7).sin() * 0.01;
        }
        let d = shifting_value(&xs);
        assert!(d < 0.3, "delta {d}");
    }

    #[test]
    fn balanced_series_sits_near_half() {
        let xs: Vec<f64> = (0..400)
            .map(|t| (t as f64 * std::f64::consts::TAU / 40.0).sin())
            .collect();
        let d = shifting_value(&xs);
        assert!((d - 0.5).abs() < 0.15, "delta {d}");
    }

    #[test]
    fn constant_series_is_neutral() {
        assert_eq!(shifting_value(&[3.0; 50]), 0.5);
    }

    #[test]
    fn degenerate_inputs_are_neutral() {
        assert_eq!(shifting_value(&[]), 0.5);
        assert_eq!(shifting_value(&[1.0, 2.0]), 0.5);
        assert_eq!(shifting_value_with(&[1.0, 2.0, 3.0], 0), 0.5);
    }

    #[test]
    fn severity_is_symmetric() {
        let mut up = vec![0.0; 100];
        up.extend(vec![10.0; 100]);
        let mut down = vec![10.0; 100];
        down.extend(vec![0.0; 100]);
        for (i, v) in up.iter_mut().enumerate() {
            *v += (i as f64 * 0.7).sin() * 0.01;
        }
        for (i, v) in down.iter_mut().enumerate() {
            *v += (i as f64 * 0.7).sin() * 0.01;
        }
        let su = shifting_severity(&up);
        let sd = shifting_severity(&down);
        assert!(su > 0.4 && sd > 0.4);
        assert!((su - sd).abs() < 0.2);
    }

    #[test]
    fn value_is_in_unit_interval() {
        let xs: Vec<f64> = (0..257).map(|t| ((t * t) % 97) as f64).collect();
        let d = shifting_value(&xs);
        assert!((0.0..=1.0).contains(&d));
    }
}

//! Augmented Dickey–Fuller stationarity test (Definition 5).
//!
//! TFB classifies a series as stationary when the ADF p-value is at most
//! 0.05 (Equation 3). We run the constant-only regression
//!
//! ```text
//! Δy_t = α + β·y_{t-1} + Σ_{i=1..p} γ_i·Δy_{t-i} + ε_t
//! ```
//!
//! and convert the t-statistic of β to an approximate p-value by
//! interpolating MacKinnon's (1994/2010) asymptotic critical values for the
//! constant-only case — table-interpolation rather than the full response
//! surface, which is accurate to a couple of percentage points across the
//! decision-relevant range and exact at the published critical points.

use tfb_math::acf::difference;
use tfb_math::matrix::Matrix;
use tfb_math::regression::ols;

/// (t-statistic, cumulative probability) anchors for the constant-only ADF
/// distribution, from MacKinnon's asymptotic tables.
const TAU_TABLE: [(f64, f64); 9] = [
    (-4.5, 0.0001),
    (-3.96, 0.001),
    (-3.43, 0.01),
    (-3.12, 0.025),
    (-2.86, 0.05),
    (-2.57, 0.10),
    (-2.20, 0.20),
    (-1.62, 0.45),
    (0.0, 0.95),
];

/// Default lag order: Schwert's rule `floor(12 (n/100)^{1/4})`, capped so
/// short series keep enough degrees of freedom.
pub fn default_lags(n: usize) -> usize {
    let schwert = (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    schwert.min(n / 10).min(12)
}

/// The ADF t-statistic for the constant-only regression with `lags` lagged
/// difference terms. Returns `None` for series too short to regress.
pub fn adf_statistic(series: &[f64], lags: usize) -> Option<f64> {
    let n = series.len();
    if n < lags + 12 {
        return None;
    }
    let dy = difference(series, 1);
    // Rows: t = lags .. dy.len(); regressors: [y_{t-1}, Δy_{t-1..t-lags}].
    let rows = dy.len() - lags;
    let p = 1 + lags;
    if rows <= p + 2 {
        return None;
    }
    let mut x = Matrix::zeros(rows, p);
    let mut y = Vec::with_capacity(rows);
    for r in 0..rows {
        let t = r + lags; // index into dy; level index is t (y_{t} in levels)
        y.push(dy[t]);
        x[(r, 0)] = series[t];
        for i in 1..=lags {
            x[(r, i)] = dy[t - i];
        }
    }
    let fit = ols(&x, &y, true).ok()?;
    // Standard error of the y_{t-1} coefficient (index 1 after intercept):
    // se = sqrt(sigma^2 * [ (X'X)^{-1} ]_{11}).
    let dof = rows.saturating_sub(p + 1);
    if dof == 0 {
        return None;
    }
    let sigma2 = fit.rss / dof as f64;
    // Rebuild the design with intercept to invert X'X.
    let mut xd = Matrix::zeros(rows, p + 1);
    for r in 0..rows {
        xd[(r, 0)] = 1.0;
        for c in 0..p {
            xd[(r, c + 1)] = x[(r, c)];
        }
    }
    let xtx = xd.transpose().matmul(&xd).ok()?;
    let inv = xtx.inverse().ok()?;
    let se = (sigma2 * inv[(1, 1)]).sqrt();
    if se < 1e-300 {
        return None;
    }
    Some(fit.coefficients[1] / se)
}

/// Approximate p-value for a constant-only ADF t-statistic.
pub fn adf_pvalue_from_stat(tau: f64) -> f64 {
    if tau <= TAU_TABLE[0].0 {
        return TAU_TABLE[0].1;
    }
    if tau >= TAU_TABLE[TAU_TABLE.len() - 1].0 {
        return TAU_TABLE[TAU_TABLE.len() - 1].1;
    }
    for w in TAU_TABLE.windows(2) {
        let (t0, p0) = w[0];
        let (t1, p1) = w[1];
        if tau <= t1 {
            // Interpolate in log-p space: the tail is roughly exponential.
            let f = (tau - t0) / (t1 - t0);
            return (p0.ln() + f * (p1.ln() - p0.ln())).exp();
        }
    }
    unreachable!("table covers the range")
}

/// ADF p-value with automatic lag selection. Series too short to test are
/// reported as non-stationary (p = 1), the conservative default.
pub fn adf_pvalue(series: &[f64]) -> f64 {
    let lags = default_lags(series.len());
    match adf_statistic(series, lags) {
        Some(tau) => adf_pvalue_from_stat(tau),
        None => 1.0,
    }
}

/// TFB's stationarity classification (Equation 3): `p <= 0.05`.
pub fn is_stationary(series: &[f64]) -> bool {
    adf_pvalue(series) <= 0.05
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let mut acc = 0.0;
        white_noise(n, seed)
            .into_iter()
            .map(|e| {
                acc += e;
                acc
            })
            .collect()
    }

    #[test]
    fn white_noise_is_stationary() {
        let xs = white_noise(500, 1);
        assert!(is_stationary(&xs), "p = {}", adf_pvalue(&xs));
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let xs = random_walk(500, 2);
        assert!(!is_stationary(&xs), "p = {}", adf_pvalue(&xs));
    }

    #[test]
    fn ar_process_is_stationary() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = vec![0.0; 600];
        for t in 1..600 {
            xs[t] = 0.5 * xs[t - 1] + rng.gen_range(-1.0..1.0);
        }
        assert!(is_stationary(&xs));
    }

    #[test]
    fn pvalue_interpolation_hits_critical_points() {
        assert!((adf_pvalue_from_stat(-2.86) - 0.05).abs() < 1e-9);
        assert!((adf_pvalue_from_stat(-3.43) - 0.01).abs() < 1e-9);
        assert!((adf_pvalue_from_stat(-2.57) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn pvalue_is_monotone_in_tau() {
        let mut prev = 0.0;
        for i in 0..100 {
            let tau = -5.0 + i as f64 * 0.06;
            let p = adf_pvalue_from_stat(tau);
            assert!(p >= prev, "non-monotone at tau {tau}");
            prev = p;
        }
    }

    #[test]
    fn short_series_default_to_non_stationary() {
        assert!(!is_stationary(&[1.0, 2.0, 3.0]));
        assert_eq!(adf_pvalue(&[1.0; 5]), 1.0);
    }

    #[test]
    fn default_lags_scale_with_length() {
        assert!(default_lags(100) >= 4);
        assert!(default_lags(100) <= 12);
        assert!(default_lags(10_000) <= 12);
        assert_eq!(default_lags(30), 3);
    }
}

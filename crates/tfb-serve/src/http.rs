//! A deliberately small HTTP/1.1 subset over `std::net` — request line,
//! headers, `Content-Length` bodies, keep-alive by default — just
//! enough protocol for the forecast endpoints and their test clients.
//! No chunked encoding, no TLS, no external dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (a forecast window is a few KiB; this
/// bounds a hostile `Content-Length`).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client allows connection reuse.
    pub keep_alive: bool,
}

/// Why a read produced no request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any bytes — the peer closed an idle connection.
    Closed,
    /// The read timed out while the connection was idle; the caller
    /// loops (and re-checks its shutdown flag).
    IdleTimeout,
    /// A malformed or oversized request; respond 400 and close.
    Malformed(String),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from a connection whose read timeout is set.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> ReadOutcome {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return ReadOutcome::Closed,
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return ReadOutcome::IdleTimeout,
        Err(e) => return ReadOutcome::Malformed(format!("request line: {e}")),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed(format!("bad request line {:?}", line.trim_end()));
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed(format!("unsupported version {version:?}"));
    }
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return ReadOutcome::Malformed("eof inside headers".to_string()),
            Ok(n) => header_bytes += n,
            Err(e) => return ReadOutcome::Malformed(format!("headers: {e}")),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return ReadOutcome::Malformed("header section too large".to_string());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(n) => return ReadOutcome::Malformed(format!("body of {n} bytes exceeds cap")),
                Err(_) => return ReadOutcome::Malformed("bad content-length".to_string()),
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut body) {
            return ReadOutcome::Malformed(format!("body: {e}"));
        }
    }
    ReadOutcome::Request(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// One response to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Retry-After` seconds (set on 429).
    pub retry_after: Option<u64>,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Request trace id, echoed as `x-tfb-trace-id` when tracing is
    /// armed (absent otherwise).
    pub trace_id: Option<String>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            retry_after: None,
            content_type: "application/json",
            trace_id: None,
        }
    }

    /// An OpenMetrics text exposition (`GET /metrics`).
    pub fn openmetrics(body: impl Into<String>) -> Response {
        Response {
            content_type: tfb_obs::openmetrics::CONTENT_TYPE,
            ..Response::json(200, body)
        }
    }

    /// A JSON `{"error": …}` response.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\": ");
        json_escape(&mut body, message);
        body.push_str("}\n");
        Response::json(status, body)
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Escapes `s` as a JSON string into `out`.
pub fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `response`, advertising `keep-alive` or `close`.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if let Some(id) = &response.trace_id {
        head.push_str(&format!("x-tfb-trace-id: {id}\r\n"));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// The read timeout handlers run with: long enough that a closed-loop
/// client never trips it mid-request, short enough that graceful
/// shutdown notices promptly on idle connections.
pub fn read_timeout() -> Duration {
    Duration::from_millis(250)
}

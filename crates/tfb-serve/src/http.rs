//! A deliberately small HTTP/1.1 subset over `std::net` — request line,
//! headers, `Content-Length` bodies, keep-alive by default — just
//! enough protocol for the forecast endpoints and their test clients.
//! No chunked encoding, no TLS, no external dependencies.
//!
//! The parse and response types are built for reuse: a connection
//! handler owns one [`Request`], one [`Response`] and two scratch
//! `String`s for its whole keep-alive life, so the steady-state request
//! loop performs no per-request allocations of its own (buffers grow to
//! their high-water mark once and stay).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (a forecast window is a few KiB; this
/// bounds a hostile `Content-Length`).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed request. Reused across a connection's requests via
/// [`read_request_into`]; the `String`/`Vec` fields keep their
/// capacity between fills.
#[derive(Debug, Default)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client allows connection reuse.
    pub keep_alive: bool,
}

impl Request {
    /// An empty request to fill via [`read_request_into`].
    pub fn new() -> Request {
        Request::default()
    }
}

/// What one read attempt produced; on [`ReadOutcome::Request`] the
/// caller's request buffer holds the parsed request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request (in the caller's buffer).
    Request,
    /// Clean EOF before any bytes — the peer closed an idle connection.
    Closed,
    /// The read timed out while the connection was idle; the caller
    /// loops (and re-checks its shutdown flag).
    IdleTimeout,
    /// A malformed or oversized request; respond 400 and close.
    Malformed(String),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from a connection whose read timeout is set, into
/// `req` (cleared first; capacity reused). `line` is line-scratch the
/// caller keeps per connection for the same reason.
pub fn read_request_into(
    reader: &mut BufReader<TcpStream>,
    req: &mut Request,
    line: &mut String,
) -> ReadOutcome {
    line.clear();
    match reader.read_line(line) {
        Ok(0) => return ReadOutcome::Closed,
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return ReadOutcome::IdleTimeout,
        Err(e) => return ReadOutcome::Malformed(format!("request line: {e}")),
    }
    {
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return ReadOutcome::Malformed(format!("bad request line {:?}", line.trim_end()));
        };
        if !version.starts_with("HTTP/1.") {
            return ReadOutcome::Malformed(format!("unsupported version {version:?}"));
        }
        req.method.clear();
        req.method.push_str(method);
        req.method.make_ascii_uppercase();
        req.path.clear();
        req.path
            .push_str(target.split('?').next().unwrap_or(target));
    }
    let mut content_length = 0usize;
    req.keep_alive = true; // HTTP/1.1 default
    let mut header_bytes = line.len();
    loop {
        line.clear();
        match reader.read_line(line) {
            Ok(0) => return ReadOutcome::Malformed("eof inside headers".to_string()),
            Ok(n) => header_bytes += n,
            Err(e) => return ReadOutcome::Malformed(format!("headers: {e}")),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return ReadOutcome::Malformed("header section too large".to_string());
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(n) => return ReadOutcome::Malformed(format!("body of {n} bytes exceeds cap")),
                Err(_) => return ReadOutcome::Malformed("bad content-length".to_string()),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            req.keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    req.body.clear();
    req.body.resize(content_length, 0);
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut req.body) {
            return ReadOutcome::Malformed(format!("body: {e}"));
        }
    }
    ReadOutcome::Request
}

/// One response to write. Reused across a connection's requests: the
/// handler calls [`reset`](Response::reset) (directly or via the
/// `set_*` builders) and the body `String` keeps its capacity.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Retry-After` seconds (set on 429).
    pub retry_after: Option<u64>,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Raw request trace id, echoed as 16 hex digits in
    /// `x-tfb-trace-id` when tracing is armed (absent otherwise).
    pub trace_id: Option<u64>,
}

impl Default for Response {
    fn default() -> Self {
        Response::new()
    }
}

impl Response {
    /// An empty 200 JSON response to fill in place.
    pub fn new() -> Response {
        Response {
            status: 200,
            body: String::new(),
            retry_after: None,
            content_type: "application/json",
            trace_id: None,
        }
    }

    /// Clears everything but keeps the body's capacity.
    pub fn reset(&mut self) {
        self.status = 200;
        self.body.clear();
        self.retry_after = None;
        self.content_type = "application/json";
        self.trace_id = None;
    }

    /// Resets to an empty JSON response with `status`; the caller
    /// writes the body into `self.body`.
    pub fn set_json(&mut self, status: u16) {
        self.reset();
        self.status = status;
    }

    /// Resets to a JSON `{"error": …}` response.
    pub fn set_error(&mut self, status: u16, message: &str) {
        self.set_json(status);
        self.body.push_str("{\"error\": ");
        json_escape(&mut self.body, message);
        self.body.push_str("}\n");
    }

    /// Resets to an OpenMetrics text exposition (`GET /metrics`).
    pub fn set_openmetrics(&mut self, text: &str) {
        self.set_json(200);
        self.content_type = tfb_obs::openmetrics::CONTENT_TYPE;
        self.body.push_str(text);
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Escapes `s` as a JSON string into `out`.
pub fn json_escape(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `response`, advertising `keep-alive` or `close`. `head` is
/// per-connection scratch for the status line and headers.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    head: &mut String,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    head.clear();
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        let _ = write!(head, "retry-after: {secs}\r\n");
    }
    if let Some(id) = response.trace_id {
        let _ = write!(head, "x-tfb-trace-id: {id:016x}\r\n");
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n\r\n"
    } else {
        "connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// The read timeout handlers run with: long enough that a closed-loop
/// client never trips it mid-request, short enough that graceful
/// shutdown notices promptly on idle connections.
pub fn read_timeout() -> Duration {
    Duration::from_millis(250)
}

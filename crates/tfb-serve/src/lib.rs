//! `tfb-serve`: a std-only threaded HTTP/1.1 forecast server over a
//! loaded model artifact.
//!
//! The serving path is the benchmark's batched-inference engine turned
//! online: concurrent `POST /forecast` requests are coalesced for up to
//! a small deadline ([`coalescer`]) and answered through one
//! `predict_batch` call whose outputs are bit-identical to per-request
//! `predict` — so serving changes latency, never forecasts. A bounded
//! queue sheds overload with `429 Retry-After` (backpressure instead of
//! unbounded memory), and SIGTERM/SIGINT (or `POST /shutdown`) drain
//! gracefully: every accepted request is answered before the process
//! exits.
//!
//! Observability: every request is traced end-to-end
//! ([`tfb_obs::trace`]) — the response echoes the trace id as
//! `x-tfb-trace-id`, per-phase wall time (parse / queue / collect /
//! infer / dispatch / write) feeds bucketed histograms and the SLO
//! burn-rate tracker, and `GET /metrics` serves the whole state as an
//! OpenMetrics text exposition (`GET /metrics.json` keeps the raw JSON
//! snapshot).
//!
//! Fleet serving: `POST /v1/forecast/{name[@label]}` routes each
//! request to a model resolved through a [`tfb_registry::Fleet`] — an
//! LRU of resident models over the content-addressed registry, with
//! mmap zero-copy cold loads, hot swap on publish, and shadow/canary
//! mirroring ([`canary`]) whose drain-time stats feed the
//! `tfb registry promote` gate. The coalescer batches per model
//! instance, so multi-tenant traffic still funnels through
//! `predict_batch` without ever mixing models in one forward pass.
//! `tfb serve --model` materializes a one-entry in-memory fleet, so the
//! single-model surface is unchanged.
//!
//! The crate is buildable with obs recording off
//! (`--no-default-features` at the binary): every probe compiles to a
//! zero-sized no-op and `/metrics` returns an empty-but-valid
//! exposition.

pub mod canary;
pub mod coalescer;
pub mod http;
pub mod server;

pub use canary::CanaryStats;
pub use coalescer::{BatchOutcome, BatchPredictor, Coalescer, CoalescerConfig, SubmitError};
pub use server::{
    install_signal_handlers, serve, serve_fleet, serve_with, signal_received, DrainReport,
    ModelInfo, ServerConfig, ServerHandle,
};

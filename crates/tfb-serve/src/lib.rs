//! `tfb-serve`: a std-only threaded HTTP/1.1 forecast server over a
//! loaded model artifact.
//!
//! The serving path is the benchmark's batched-inference engine turned
//! online: concurrent `POST /forecast` requests are coalesced for up to
//! a small deadline ([`coalescer`]) and answered through one
//! `predict_batch` call whose outputs are bit-identical to per-request
//! `predict` — so serving changes latency, never forecasts. A bounded
//! queue sheds overload with `429 Retry-After` (backpressure instead of
//! unbounded memory), `GET /metrics` exposes the live
//! [`tfb_obs`] counters and latency/batch-size histograms, and
//! SIGTERM/SIGINT (or `POST /shutdown`) drain gracefully: every
//! accepted request is answered before the process exits.
//!
//! The crate is buildable with obs recording off
//! (`--no-default-features` at the binary): every probe compiles to a
//! zero-sized no-op and `/metrics` returns an empty snapshot.

pub mod coalescer;
pub mod http;
pub mod server;

pub use coalescer::{BatchPredictor, Coalescer, CoalescerConfig, SubmitError};
pub use server::{
    install_signal_handlers, serve, serve_with, signal_received, ModelInfo, ServerConfig,
    ServerHandle,
};

//! The threaded HTTP server: a non-blocking accept loop, one handler
//! thread per connection (keep-alive), the coalescer as the single
//! inference path, and graceful drain on shutdown.
//!
//! Endpoints:
//!
//! * `POST /forecast` — body `{"window": [f64; lookback*dim]}`
//!   (time-major); answers `{"method", "horizon", "dim", "forecast"}`.
//!   Wrong shapes are 400, a full queue is `429` + `Retry-After`,
//!   draining is 503.
//! * `GET /healthz` — model geometry and `"status": "ok"`.
//! * `GET /metrics` — the live [`tfb_obs`] state as an OpenMetrics text
//!   exposition: per-phase request-latency histograms, queue-depth /
//!   batch-fill gauges, shed counters, SLO burn rates and slow-request
//!   exemplars. Valid (`# EOF`-terminated, empty) even when no run is
//!   recording.
//! * `GET /metrics.json` — the same snapshot as JSON (counters, gauges,
//!   latency/batch-size histograms), for scripts that predate the
//!   OpenMetrics endpoint.
//! * `POST /shutdown` — begins graceful drain (the admin hook tests and
//!   scripts use; SIGTERM/SIGINT do the same via
//!   [`install_signal_handlers`]).
//!
//! Every response echoes its request's trace id as `x-tfb-trace-id`
//! when a run is recording; per-phase wall time (parse, queue, collect,
//! infer, dispatch, write) is attributed via
//! [`tfb_obs::trace::RequestTrace`] and lands in the phase histograms,
//! the SLO tracker, and the run's event sink.
//!
//! Shutdown sequence: stop accepting; handler threads finish their
//! in-flight request and stop reading new ones; the coalescer predicts
//! what is already queued, answers it, and exits. Nothing accepted is
//! dropped; nothing new is admitted.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use tfb_artifact::ServableModel;
use tfb_json::JsonValue;
use tfb_obs::trace::{Phase, RequestTrace, TraceStatus};

use crate::coalescer::{Coalescer, CoalescerConfig, SubmitError};
use crate::http::{self, ReadOutcome, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Coalescer tuning.
    pub coalescer: CoalescerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: CoalescerConfig::default(),
        }
    }
}

/// What `/healthz` and forecast responses report about the model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Method id.
    pub method: String,
    /// Look-back window length.
    pub lookback: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Channel count.
    pub dim: usize,
}

impl ModelInfo {
    /// The info a loaded artifact reports.
    pub fn of(model: &ServableModel) -> ModelInfo {
        ModelInfo {
            method: model.method().to_string(),
            lookback: model.lookback(),
            horizon: model.horizon(),
            dim: model.dim(),
        }
    }
}

struct ServerCtx {
    info: ModelInfo,
    coalescer: Coalescer,
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) also drains cleanly.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flags the server to drain (idempotent; `POST /shutdown` and the
    /// signal path funnel here).
    pub fn request_shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested from any path.
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a drain and blocks until the accept loop, every
    /// connection handler and the coalescer have finished.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until a drain is requested elsewhere (`POST /shutdown` or
    /// a signal observed via `poll`), then drains.
    pub fn run_until<F: FnMut() -> bool>(self, mut poll: F) {
        while !self.shutdown_requested() && !poll() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Binds, spawns the accept loop, and returns immediately.
pub fn serve(model: ServableModel, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let info = ModelInfo::of(&model);
    serve_with(Arc::new(model), info, config)
}

/// [`serve`] over any [`BatchPredictor`] — the seam integration tests
/// use to drive the HTTP surface with controlled (e.g. slow) models.
pub fn serve_with(
    predictor: Arc<dyn crate::coalescer::BatchPredictor>,
    info: ModelInfo,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let coalescer = Coalescer::start(predictor, config.coalescer);
    let ctx = Arc::new(ServerCtx {
        info,
        coalescer,
        shutdown: AtomicBool::new(false),
    });
    let accept_ctx = Arc::clone(&ctx);
    let accept = std::thread::Builder::new()
        .name("tfb-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_ctx))
        .expect("spawn accept thread");
    Ok(ServerHandle {
        addr,
        ctx,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_ctx = Arc::clone(&ctx);
                match std::thread::Builder::new()
                    .name("tfb-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, conn_ctx))
                {
                    Ok(h) => handlers.push(h),
                    Err(_) => tfb_obs::counter!("serve/spawn_failures").add(1),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        // Reap finished handlers so the vec stays bounded by live
        // connections, not by connection history.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(http::read_timeout()));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut reader) {
            ReadOutcome::Request(req) => {
                // The trace clock starts once a full request is in hand:
                // socket idle time between keep-alive requests is not
                // request latency.
                let started = Instant::now();
                let mut trace = RequestTrace::begin();
                tfb_obs::counter!("serve/requests").add(1);
                let mut response = route(&req, &ctx, &mut trace);
                tfb_obs::histogram!("serve/request_us")
                    .record(started.elapsed().as_secs_f64() * 1e6);
                if response.status >= 400 {
                    tfb_obs::counter!("serve/http_errors").add(1);
                }
                trace.set_status(match response.status {
                    429 => TraceStatus::Shed,
                    s if s >= 400 => TraceStatus::Error,
                    _ => TraceStatus::Ok,
                });
                response.trace_id = trace.id_hex();
                // Draining? Answer the in-flight request, then close.
                let keep_alive = req.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                let wrote = http::write_response(&mut writer, &response, keep_alive).is_ok();
                trace.mark(Phase::Write);
                trace.finish();
                if !wrote || !keep_alive {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::IdleTimeout => {
                tfb_obs::counter!("serve/idle_timeouts").add(1);
                continue;
            }
            ReadOutcome::Malformed(msg) => {
                tfb_obs::counter!("serve/http_errors").add(1);
                let mut trace = RequestTrace::begin();
                trace.set_status(TraceStatus::Error);
                let mut response = Response::error(400, &msg);
                response.trace_id = trace.id_hex();
                let _ = http::write_response(&mut writer, &response, false);
                trace.mark(Phase::Write);
                trace.finish();
                return;
            }
        }
    }
}

fn route(req: &Request, ctx: &ServerCtx, trace: &mut RequestTrace) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/forecast") => forecast(req, ctx, trace),
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => Response::openmetrics(tfb_obs::openmetrics::render_live()),
        ("GET", "/metrics.json") => Response::json(200, tfb_obs::metrics_snapshot().to_json()),
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\": \"draining\"}\n")
        }
        (_, "/forecast") | (_, "/shutdown") => Response::error(405, "use POST"),
        (_, "/healthz") | (_, "/metrics") | (_, "/metrics.json") => Response::error(405, "use GET"),
        _ => Response::error(404, "unknown path"),
    }
}

fn healthz(ctx: &ServerCtx) -> Response {
    let m = &ctx.info;
    Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"method\": {}, \"lookback\": {}, \"horizon\": {}, \
             \"dim\": {}}}\n",
            {
                let mut s = String::new();
                http::json_escape(&mut s, &m.method);
                s
            },
            m.lookback,
            m.horizon,
            m.dim
        ),
    )
}

fn forecast(req: &Request, ctx: &ServerCtx, trace: &mut RequestTrace) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let parsed = match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let Some(window_val) = parsed.get("window") else {
        return Response::error(400, "missing \"window\" field");
    };
    let Some(items) = window_val.as_array() else {
        return Response::error(400, "\"window\" must be an array of numbers");
    };
    let mut window = Vec::with_capacity(items.len());
    for v in items {
        match v.as_f64() {
            Some(x) => window.push(x),
            None => return Response::error(400, "\"window\" must be an array of numbers"),
        }
    }
    trace.mark(Phase::Parse);
    let rx = match ctx.coalescer.submit(window) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            let mut r = Response::error(429, "request queue is full, retry shortly");
            r.retry_after = Some(1);
            return r;
        }
        Err(SubmitError::ShutDown) => return Response::error(503, "server is draining"),
        Err(e @ SubmitError::BadWindow { .. }) => return Response::error(400, &e.to_string()),
    };
    match rx.recv() {
        Ok(Ok(out)) => {
            trace.absorb_batch(
                out.queue_ns,
                out.collect_ns,
                out.infer_ns,
                out.batch_id,
                out.batch_size as u64,
            );
            let m = &ctx.info;
            let doc = JsonValue::Object(vec![
                ("method".to_string(), JsonValue::String(m.method.clone())),
                ("horizon".to_string(), JsonValue::Number(m.horizon as f64)),
                ("dim".to_string(), JsonValue::Number(m.dim as f64)),
                (
                    "forecast".to_string(),
                    JsonValue::Array(out.forecast.into_iter().map(JsonValue::Number).collect()),
                ),
            ]);
            Response::json(200, doc.compact() + "\n")
        }
        Ok(Err(model_err)) => Response::error(500, &model_err),
        Err(mpsc::RecvError) => Response::error(500, "prediction worker dropped the request"),
    }
}

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM arrived since
/// [`install_signal_handlers`] ran.
pub fn signal_received() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Installs SIGINT and SIGTERM handlers that flag
/// [`signal_received`] so the CLI can drain gracefully. No-op on
/// non-unix platforms (Ctrl-C then terminates the process directly).
#[cfg(unix)]
pub fn install_signal_handlers() {
    unsafe extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// See the unix implementation.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

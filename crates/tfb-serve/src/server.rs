//! The threaded HTTP server: one non-blocking accept loop per shard
//! over dup'd handles of a shared listener, one handler thread per
//! connection (keep-alive), the sharded coalescer as the single
//! inference path, and graceful drain on shutdown.
//!
//! Sharding: the coalescer runs one batcher per shard; each shard also
//! gets its own accept loop, and every connection a loop accepts is
//! pinned to that loop's shard — the request hot path touches no
//! cross-shard shared state (no global round-robin counter, no global
//! queue lock). Load imbalance between shards is corrected on the
//! batcher side by work stealing, not on the accept side.
//!
//! Endpoints:
//!
//! * `POST /forecast` — body `{"window": [f64; lookback*dim]}`
//!   (time-major); answers `{"method", "horizon", "dim", "forecast"}`.
//!   Wrong shapes are 400, a full queue is `429` + `Retry-After`,
//!   draining is 503.
//! * `GET /healthz` — model geometry and `"status": "ok"`.
//! * `GET /metrics` — the live [`tfb_obs`] state as an OpenMetrics text
//!   exposition: per-phase request-latency histograms, queue-depth /
//!   batch-fill gauges (global and per shard), shed and steal counters,
//!   SLO burn rates and slow-request exemplars. Valid
//!   (`# EOF`-terminated, empty) even when no run is recording.
//! * `GET /metrics.json` — the same snapshot as JSON (counters, gauges,
//!   latency/batch-size histograms), for scripts that predate the
//!   OpenMetrics endpoint.
//! * `POST /shutdown` — begins graceful drain (the admin hook tests and
//!   scripts use; SIGTERM/SIGINT do the same via
//!   [`install_signal_handlers`]).
//!
//! Every response echoes its request's trace id as `x-tfb-trace-id`
//! when a run is recording; per-phase wall time (parse, queue, collect,
//! infer, dispatch, write) is attributed via
//! [`tfb_obs::trace::RequestTrace`] and lands in the phase histograms,
//! the SLO tracker, and the run's event sink.
//!
//! Hot-path allocation discipline: each connection handler owns its
//! request, response and scratch buffers for the connection's whole
//! life, and the forecast response is serialized straight into the
//! reused body buffer — steady-state keep-alive traffic allocates only
//! the window vector handed to the coalescer (which must own it) and
//! whatever the JSON parser builds.
//!
//! Shutdown sequence: stop accepting; handler threads finish their
//! in-flight request and stop reading new ones; the coalescer predicts
//! what is already queued, answers it, and exits. Nothing accepted is
//! dropped; nothing new is admitted.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use tfb_artifact::ServableModel;
use tfb_json::JsonValue;
use tfb_obs::trace::{Phase, RequestTrace, TraceStatus};
use tfb_registry::{Fleet, FleetError};

use crate::canary::{CanaryHub, CanaryStats};
use crate::coalescer::{BatchPredictor, Coalescer, CoalescerConfig, SubmitError};
use crate::http::{self, ReadOutcome, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Coalescer tuning (including the shard count).
    pub coalescer: CoalescerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: CoalescerConfig::default(),
        }
    }
}

/// What `/healthz` and forecast responses report about the model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Method id.
    pub method: String,
    /// Look-back window length.
    pub lookback: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Channel count.
    pub dim: usize,
}

impl ModelInfo {
    /// The info a loaded artifact reports.
    pub fn of(model: &ServableModel) -> ModelInfo {
        ModelInfo {
            method: model.method().to_string(),
            lookback: model.lookback(),
            horizon: model.horizon(),
            dim: model.dim(),
        }
    }
}

/// What a drained server hands back: everything only known once the
/// last request is answered.
#[derive(Debug, Default)]
pub struct DrainReport {
    /// Per-model canary comparison stats from mirrored traffic (empty
    /// when no canary was staged or no registry is attached).
    pub canary: Vec<CanaryStats>,
    /// Mirrored requests dropped because the canary queue was full.
    pub canary_dropped: u64,
}

struct ServerCtx {
    /// Geometry of the default model, when one exists (healthz + the
    /// legacy `/forecast` response shape).
    info: Option<ModelInfo>,
    /// The model `/forecast` routes to; fleet-only servers with no
    /// unambiguous default answer 404 there instead.
    default: Option<Arc<dyn BatchPredictor>>,
    /// Fleet name of the default model (canary mirroring on `/forecast`).
    default_name: Option<String>,
    /// The routable fleet behind `/v1/forecast/{model}`.
    fleet: Option<Arc<Fleet>>,
    /// Mirror queue + worker, armed when a registry backs the fleet.
    canary: Option<CanaryHub>,
    coalescer: Coalescer,
    shutdown: AtomicBool,
}

/// The stand-in predictor when a fleet has no unambiguous default
/// model: `/forecast` 404s before ever submitting, so this only gives
/// the coalescer something to hold.
struct NoDefault;

impl BatchPredictor for NoDefault {
    fn input_len(&self) -> usize {
        0
    }

    fn output_len(&self) -> usize {
        0
    }

    fn predict_batch(
        &self,
        _windows: &tfb_math::matrix::Matrix,
    ) -> Result<tfb_math::matrix::Matrix, String> {
        Err("no default model".to_string())
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) also drains cleanly.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    accepts: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many shards (accept loops + batchers) the server runs.
    pub fn shards(&self) -> usize {
        self.ctx.coalescer.shards()
    }

    /// Requests answered by a different shard than the one they landed
    /// on (see [`Coalescer::steal_count`]).
    pub fn steal_count(&self) -> u64 {
        self.ctx.coalescer.steal_count()
    }

    /// Flags the server to drain (idempotent; `POST /shutdown` and the
    /// signal path funnel here).
    pub fn request_shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested from any path.
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// The fleet behind the server, when one is attached (always, for
    /// servers built via [`serve`] or [`serve_fleet`]).
    pub fn fleet(&self) -> Option<&Arc<Fleet>> {
        self.ctx.fleet.as_ref()
    }

    /// Requests a drain and blocks until every accept loop, every
    /// connection handler and the canary mirror have finished, then
    /// reports what only a drained server knows.
    pub fn shutdown(mut self) -> DrainReport {
        self.request_shutdown();
        for handle in self.accepts.drain(..) {
            let _ = handle.join();
        }
        match &self.ctx.canary {
            Some(hub) => DrainReport {
                canary: hub.finish(),
                canary_dropped: hub.dropped(),
            },
            None => DrainReport::default(),
        }
    }

    /// Blocks until a drain is requested elsewhere (`POST /shutdown` or
    /// a signal observed via `poll`), then drains.
    pub fn run_until<F: FnMut() -> bool>(self, mut poll: F) -> DrainReport {
        while !self.shutdown_requested() && !poll() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        for handle in self.accepts.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Binds, spawns the accept loops, and returns immediately. The single
/// model is materialized as a one-entry in-memory fleet addressable as
/// `/v1/forecast/<method>` (and as the `/forecast` default).
pub fn serve(model: ServableModel, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let name = model.method().to_string();
    serve_fleet(Arc::new(Fleet::single(&name, model)), config)
}

/// [`serve`] over any [`BatchPredictor`](crate::coalescer::BatchPredictor)
/// — the seam integration tests use to drive the HTTP surface with
/// controlled (e.g. slow) models. No fleet is attached: only the
/// legacy single-model endpoints exist.
pub fn serve_with(
    predictor: Arc<dyn crate::coalescer::BatchPredictor>,
    info: ModelInfo,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_inner(predictor, Some(info), None, None, None, config)
}

/// [`serve`] over a whole [`Fleet`]: `/v1/forecast/{model}` routes per
/// request, `/forecast` serves the fleet's default model when there is
/// an unambiguous one, and canary mirroring is armed when a registry
/// backs the fleet.
pub fn serve_fleet(fleet: Arc<Fleet>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let default = fleet
        .default_ref()
        .and_then(|(name, label)| fleet.get(&name, &label).ok().map(|m| (name, m)));
    let (default_name, info, predictor): (
        Option<String>,
        Option<ModelInfo>,
        Arc<dyn BatchPredictor>,
    ) = match default {
        Some((name, m)) => (Some(name), Some(ModelInfo::of(&m)), m),
        None => (None, None, Arc::new(NoDefault)),
    };
    let canary = fleet.has_registry().then(CanaryHub::new);
    serve_inner(predictor, info, default_name, Some(fleet), canary, config)
}

fn serve_inner(
    predictor: Arc<dyn BatchPredictor>,
    info: Option<ModelInfo>,
    default_name: Option<String>,
    fleet: Option<Arc<Fleet>>,
    canary: Option<CanaryHub>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let has_default = info.is_some();
    let coalescer = Coalescer::start(Arc::clone(&predictor), config.coalescer);
    let shards = coalescer.shards();
    let ctx = Arc::new(ServerCtx {
        info,
        default: has_default.then_some(predictor),
        default_name,
        fleet,
        canary,
        coalescer,
        shutdown: AtomicBool::new(false),
    });
    // One accept loop per shard over dup'd handles of the same bound
    // socket: the kernel wakes whichever loops are polling, connections
    // spread across shards, and each connection's requests feed the
    // queue of the shard that accepted it.
    let accepts = (0..shards)
        .map(|shard| {
            let shard_listener = listener.try_clone()?;
            let accept_ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("tfb-serve-accept{shard}"))
                .spawn(move || accept_loop(shard_listener, accept_ctx, shard))
                .map_err(std::io::Error::other)
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(ServerHandle { addr, ctx, accepts })
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>, shard: usize) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_ctx = Arc::clone(&ctx);
                match std::thread::Builder::new()
                    .name(format!("tfb-serve-conn-s{shard}"))
                    .spawn(move || handle_connection(stream, conn_ctx, shard))
                {
                    Ok(h) => handlers.push(h),
                    Err(_) => tfb_obs::counter!("serve/spawn_failures").add(1),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        // Reap finished handlers so the vec stays bounded by live
        // connections, not by connection history.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, ctx: Arc<ServerCtx>, shard: usize) {
    // Registered for the sampling profiler; handler threads mostly sit
    // in `<idle>` (blocking reads), which is itself useful signal.
    let _profiled = tfb_obs::flight::profiler::register_thread(&format!("conn-s{shard}"));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(http::read_timeout()));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    // Per-connection buffers: parse target, response, line and header
    // scratch all keep their capacity across keep-alive requests.
    let mut req = Request::new();
    let mut resp = Response::new();
    let mut line = String::new();
    let mut head = String::new();
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request_into(&mut reader, &mut req, &mut line) {
            ReadOutcome::Request => {
                // The trace clock starts once a full request is in hand:
                // socket idle time between keep-alive requests is not
                // request latency.
                let started = Instant::now();
                let mut trace = RequestTrace::begin();
                tfb_obs::counter!("serve/requests").add(1);
                route(&req, &ctx, shard, &mut trace, &mut resp);
                tfb_obs::histogram!("serve/request_us")
                    .record(started.elapsed().as_secs_f64() * 1e6);
                if resp.status >= 400 {
                    tfb_obs::counter!("serve/http_errors").add(1);
                }
                trace.set_status(match resp.status {
                    429 => TraceStatus::Shed,
                    s if s >= 400 => TraceStatus::Error,
                    _ => TraceStatus::Ok,
                });
                resp.trace_id = trace.id();
                // Draining? Answer the in-flight request, then close.
                let keep_alive = req.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                let wrote = http::write_response(&mut writer, &resp, keep_alive, &mut head).is_ok();
                trace.mark(Phase::Write);
                trace.finish();
                if !wrote || !keep_alive {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::IdleTimeout => {
                tfb_obs::counter!("serve/idle_timeouts").add(1);
                continue;
            }
            ReadOutcome::Malformed(msg) => {
                tfb_obs::counter!("serve/http_errors").add(1);
                let mut trace = RequestTrace::begin();
                trace.set_status(TraceStatus::Error);
                resp.set_error(400, &msg);
                resp.trace_id = trace.id();
                let _ = http::write_response(&mut writer, &resp, false, &mut head);
                trace.mark(Phase::Write);
                trace.finish();
                return;
            }
        }
    }
}

fn route(
    req: &Request,
    ctx: &ServerCtx,
    shard: usize,
    trace: &mut RequestTrace,
    resp: &mut Response,
) {
    const MODEL_ROUTE: &str = "/v1/forecast/";
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/forecast") => forecast(req, ctx, shard, trace, resp),
        ("GET", "/healthz") => healthz(ctx, resp),
        ("GET", "/metrics") => resp.set_openmetrics(&tfb_obs::openmetrics::render_live()),
        ("GET", "/metrics.json") => {
            resp.set_json(200);
            resp.body.push_str(&tfb_obs::metrics_snapshot().to_json());
        }
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            resp.set_json(200);
            resp.body.push_str("{\"status\": \"draining\"}\n");
        }
        ("POST", path) if path.len() > MODEL_ROUTE.len() && path.starts_with(MODEL_ROUTE) => {
            forecast_model(req, ctx, shard, trace, resp, &path[MODEL_ROUTE.len()..])
        }
        (_, path) if path.starts_with(MODEL_ROUTE) => resp.set_error(405, "use POST"),
        (_, "/forecast") | (_, "/shutdown") => resp.set_error(405, "use POST"),
        (_, "/healthz") | (_, "/metrics") | (_, "/metrics.json") => resp.set_error(405, "use GET"),
        _ => resp.set_error(404, "unknown path"),
    }
}

fn healthz(ctx: &ServerCtx, resp: &mut Response) {
    use std::fmt::Write as _;
    let models = ctx
        .fleet
        .as_ref()
        .map(|f| f.names().len())
        .unwrap_or(usize::from(ctx.info.is_some()));
    resp.set_json(200);
    match &ctx.info {
        Some(m) => {
            resp.body.push_str("{\"status\": \"ok\", \"method\": ");
            http::json_escape(&mut resp.body, &m.method);
            let _ = writeln!(
                resp.body,
                ", \"lookback\": {}, \"horizon\": {}, \"dim\": {}, \"models\": {models}}}",
                m.lookback, m.horizon, m.dim
            );
        }
        None => {
            let _ = writeln!(resp.body, "{{\"status\": \"ok\", \"models\": {models}}}");
        }
    }
}

/// The legacy single-model endpoint: routes to the fleet's default.
fn forecast(
    req: &Request,
    ctx: &ServerCtx,
    shard: usize,
    trace: &mut RequestTrace,
    resp: &mut Response,
) {
    let (Some(model), Some(info)) = (&ctx.default, &ctx.info) else {
        return resp.set_error(404, "no default model; use /v1/forecast/{model}");
    };
    let canary = canary_for(ctx, ctx.default_name.as_deref());
    run_forecast(
        req,
        ctx,
        shard,
        trace,
        resp,
        Arc::clone(model),
        info,
        None,
        canary,
    );
}

/// The per-request routing endpoint: `POST /v1/forecast/{name[@label]}`
/// resolves through the fleet's LRU (cold-loading via mmap on a miss).
fn forecast_model(
    req: &Request,
    ctx: &ServerCtx,
    shard: usize,
    trace: &mut RequestTrace,
    resp: &mut Response,
    model_ref: &str,
) {
    let Some(fleet) = &ctx.fleet else {
        return resp.set_error(404, "no model registry attached");
    };
    let (name, label) = tfb_registry::parse_ref(model_ref);
    match fleet.get(name, label) {
        Ok(model) => {
            fleet.request_counter(name).add(1);
            let info = ModelInfo::of(&model);
            // Mirror production traffic only: explicitly addressing the
            // canary label must not mirror onto itself.
            let canary = if label == tfb_registry::DEFAULT_LABEL {
                canary_for(ctx, Some(name))
            } else {
                None
            };
            let routed = format!("{name}@{label}");
            run_forecast(
                req,
                ctx,
                shard,
                trace,
                resp,
                model as Arc<dyn BatchPredictor>,
                &info,
                Some(&routed),
                canary,
            );
        }
        Err(e @ FleetError::UnknownModel(_)) => resp.set_error(404, &e.to_string()),
        Err(e) => resp.set_error(500, &e.to_string()),
    }
}

/// The staged canary for `name`, when mirroring is armed and one exists.
fn canary_for(ctx: &ServerCtx, name: Option<&str>) -> Option<(String, Arc<ServableModel>)> {
    let name = name?;
    ctx.canary.as_ref()?;
    let fleet = ctx.fleet.as_ref()?;
    fleet.canary(name).map(|m| (name.to_string(), m))
}

#[allow(clippy::too_many_arguments)]
fn run_forecast(
    req: &Request,
    ctx: &ServerCtx,
    shard: usize,
    trace: &mut RequestTrace,
    resp: &mut Response,
    model: Arc<dyn BatchPredictor>,
    info: &ModelInfo,
    routed: Option<&str>,
    canary: Option<(String, Arc<ServableModel>)>,
) {
    use std::fmt::Write as _;
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return resp.set_error(400, "body is not UTF-8");
    };
    let parsed = match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => return resp.set_error(400, &format!("bad JSON: {e}")),
    };
    let Some(window_val) = parsed.get("window") else {
        return resp.set_error(400, "missing \"window\" field");
    };
    let Some(items) = window_val.as_array() else {
        return resp.set_error(400, "\"window\" must be an array of numbers");
    };
    // The coalescer takes ownership of the window (it outlives this
    // stack frame inside the batch queue), so this vec is the one
    // intentional per-request allocation.
    let mut window = Vec::with_capacity(items.len());
    for v in items {
        match v.as_f64() {
            Some(x) => window.push(x),
            None => return resp.set_error(400, "\"window\" must be an array of numbers"),
        }
    }
    trace.mark(Phase::Parse);
    // Clone the window only when a canary will actually mirror it.
    let mirror_window = canary.as_ref().map(|_| window.clone());
    let rx = match ctx.coalescer.submit_model(shard, model, window) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            resp.set_error(429, "request queue is full, retry shortly");
            resp.retry_after = Some(1);
            return;
        }
        Err(SubmitError::ShutDown) => return resp.set_error(503, "server is draining"),
        Err(e @ SubmitError::BadWindow { .. }) => return resp.set_error(400, &e.to_string()),
    };
    match rx.recv() {
        Ok(Ok(out)) => {
            trace.absorb_batch(
                out.queue_ns,
                out.collect_ns,
                out.infer_ns,
                out.batch_id,
                out.batch_size as u64,
            );
            if let (Some((name, candidate)), Some(hub), Some(w)) =
                (canary, &ctx.canary, &mirror_window)
            {
                hub.mirror(&name, candidate, w, &out.forecast);
            }
            // Serialized straight into the reused body buffer, in the
            // exact byte format `JsonValue::compact` would produce.
            resp.set_json(200);
            let b = &mut resp.body;
            b.push('{');
            if let Some(routed) = routed {
                b.push_str("\"model\":");
                http::json_escape(b, routed);
                b.push(',');
            }
            b.push_str("\"method\":");
            http::json_escape(b, &info.method);
            let _ = write!(
                b,
                ",\"horizon\":{},\"dim\":{},\"forecast\":[",
                info.horizon, info.dim
            );
            for (i, v) in out.forecast.iter().enumerate() {
                if i > 0 {
                    b.push(',');
                }
                tfb_json::write_number(b, *v);
            }
            b.push_str("]}\n");
        }
        Ok(Err(model_err)) => resp.set_error(500, &model_err),
        Err(mpsc::RecvError) => resp.set_error(500, "prediction worker dropped the request"),
    }
}

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM arrived since
/// [`install_signal_handlers`] ran.
pub fn signal_received() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Installs SIGINT and SIGTERM handlers that flag
/// [`signal_received`] so the CLI can drain gracefully. No-op on
/// non-unix platforms (Ctrl-C then terminates the process directly).
#[cfg(unix)]
pub fn install_signal_handlers() {
    unsafe extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// See the unix implementation.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

//! Shadow/canary mirroring: when a model has a `canary`-labeled
//! candidate staged in the registry, every production forecast for that
//! model is mirrored — window plus the forecast actually served — onto
//! a bounded queue a single worker thread drains, running the candidate
//! on the same window and accumulating per-model comparison stats.
//!
//! The mirror is strictly off the request path: production latency pays
//! one `try_send` of an owned job; a full queue drops the sample (and
//! counts `serve/canary/dropped`) rather than ever applying
//! backpressure to live traffic. On drain the accumulated
//! [`CanaryStats`] become two parallel obs manifests (baseline =
//! production behavior, candidate = canary behavior on the identical
//! traffic) that `tfb obs diff`/`gate` — and therefore
//! `tfb registry promote` — can judge.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use tfb_artifact::ServableModel;

/// Mirror queue bound: live traffic beyond what the worker can absorb
/// is sampled, not queued without limit.
const QUEUE_CAP: usize = 256;

/// One mirrored request.
struct Job {
    name: String,
    model: Arc<ServableModel>,
    window: Vec<f64>,
    primary: Vec<f64>,
}

/// Per-model accumulator the worker folds mirrored traffic into.
#[derive(Default)]
struct Acc {
    requests: u64,
    errors: u64,
    values: u64,
    values_primary: u64,
    values_canary: u64,
    nan_primary: u64,
    nan_canary: u64,
    predict_ns: u64,
    abs_primary: f64,
    abs_canary: f64,
    abs_delta: f64,
    horizon: u64,
    dim: u64,
}

/// What mirrored traffic measured for one model's canary, aggregated
/// over the server's whole life.
#[derive(Debug, Clone)]
pub struct CanaryStats {
    /// Model name the canary shadows.
    pub model: String,
    /// Mirrored requests the candidate answered (or failed).
    pub requests: u64,
    /// Candidate predict errors.
    pub errors: u64,
    /// Forecast values produced per request pair.
    pub values: u64,
    /// NaN values in the *production* forecasts (the baseline's health).
    pub nan_primary: u64,
    /// NaN values in the candidate's forecasts.
    pub nan_canary: u64,
    /// Candidate predict wall time, nanoseconds, summed.
    pub predict_ns: u64,
    /// Mean |value| of production forecasts.
    pub mean_abs_primary: f64,
    /// Mean |value| of candidate forecasts.
    pub mean_abs_canary: f64,
    /// Mean |candidate − production| per value — the drift the
    /// promotion gate judges.
    pub mean_abs_delta: f64,
    /// Candidate horizon (manifest row key).
    pub horizon: u64,
    /// Candidate channel count.
    pub dim: u64,
}

/// The sending half the request path sees, plus the worker that drains
/// it. `finish` closes the queue, joins the worker, and returns the
/// stats exactly once.
pub(crate) struct CanaryHub {
    tx: Mutex<Option<mpsc::SyncSender<Job>>>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    stats: Arc<Mutex<BTreeMap<String, Acc>>>,
    dropped: AtomicU64,
}

impl CanaryHub {
    pub(crate) fn new() -> CanaryHub {
        let (tx, rx) = mpsc::sync_channel::<Job>(QUEUE_CAP);
        let stats: Arc<Mutex<BTreeMap<String, Acc>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let worker_stats = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("tfb-serve-canary".to_string())
            .spawn(move || worker_loop(rx, worker_stats))
            .expect("spawn canary worker");
        CanaryHub {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            stats,
            dropped: AtomicU64::new(0),
        }
    }

    /// Mirrors one production request. Never blocks: a full queue drops
    /// the sample and counts it.
    pub(crate) fn mirror(
        &self,
        name: &str,
        model: Arc<ServableModel>,
        window: &[f64],
        primary: &[f64],
    ) {
        let job = Job {
            name: name.to_string(),
            model,
            window: window.to_vec(),
            primary: primary.to_vec(),
        };
        let sent = self
            .tx
            .lock()
            .expect("canary sender poisoned")
            .as_ref()
            .map(|tx| tx.try_send(job).is_ok())
            .unwrap_or(false);
        if sent {
            tfb_obs::counter!("serve/canary/mirrored").add(1);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            tfb_obs::counter!("serve/canary/dropped").add(1);
        }
    }

    /// Mirrored requests dropped because the queue was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Closes the queue, drains the worker, and returns the per-model
    /// stats (sorted by model name). Idempotent: later calls return
    /// the same snapshot.
    pub(crate) fn finish(&self) -> Vec<CanaryStats> {
        // Dropping the only sender ends the worker's recv loop after it
        // drains what is already queued.
        *self.tx.lock().expect("canary sender poisoned") = None;
        if let Some(worker) = self.worker.lock().expect("canary worker poisoned").take() {
            let _ = worker.join();
        }
        let stats = self.stats.lock().expect("canary stats poisoned");
        stats
            .iter()
            .map(|(name, a)| CanaryStats {
                model: name.clone(),
                requests: a.requests,
                errors: a.errors,
                values: a.values,
                nan_primary: a.nan_primary,
                nan_canary: a.nan_canary,
                predict_ns: a.predict_ns,
                mean_abs_primary: a.abs_primary / a.values_primary.max(1) as f64,
                mean_abs_canary: a.abs_canary / a.values_canary.max(1) as f64,
                mean_abs_delta: a.abs_delta / a.values.max(1) as f64,
                horizon: a.horizon,
                dim: a.dim,
            })
            .collect()
    }
}

fn worker_loop(rx: mpsc::Receiver<Job>, stats: Arc<Mutex<BTreeMap<String, Acc>>>) {
    let _profiled = tfb_obs::flight::profiler::register_thread("canary-mirror");
    while let Ok(job) = rx.recv() {
        let started = Instant::now();
        let result = {
            let _span = tfb_obs::span!("serve.canary");
            job.model.forecast(&job.window)
        };
        let predict_ns = started.elapsed().as_nanos() as u64;
        let mut stats = stats.lock().expect("canary stats poisoned");
        let acc = stats.entry(job.name).or_default();
        acc.requests += 1;
        acc.predict_ns += predict_ns;
        acc.horizon = job.model.horizon() as u64;
        acc.dim = job.model.dim() as u64;
        match result {
            Ok(candidate) => {
                // Compare positionally over the overlap: a canary with
                // a different horizon still yields drift on the shared
                // prefix, plus its own NaN/magnitude rows.
                for (c, p) in candidate.iter().zip(&job.primary) {
                    acc.abs_delta += (c - p).abs();
                }
                for p in &job.primary {
                    acc.abs_primary += p.abs();
                    acc.nan_primary += u64::from(p.is_nan());
                }
                for c in &candidate {
                    acc.abs_canary += c.abs();
                    acc.nan_canary += u64::from(c.is_nan());
                }
                acc.values += candidate.len().min(job.primary.len()) as u64;
                acc.values_primary += job.primary.len() as u64;
                acc.values_canary += candidate.len() as u64;
            }
            Err(_) => acc.errors += 1,
        }
    }
}

//! The adaptive micro-batching coalescer: concurrent forecast requests
//! are collected for up to a configurable deadline (or until a batch
//! fills) and funneled through one `predict_batch` call.
//!
//! State machine of the batcher thread:
//!
//! ```text
//!          ┌──────── queue empty ────────┐
//!          v                             │
//!     [ Idle ] ── request arrives ─> [ Filling ]
//!          ^                             │  batch full, or
//!          │                             │  max_delay since first
//!          │                             v
//!          └──── route responses ── [ Predict ]
//! ```
//!
//! * **Idle** — the thread sleeps on a condvar; a `submit` wakes it.
//! * **Filling** — from the first request's arrival, the thread keeps
//!   accepting more until `max_batch` requests are queued or
//!   `max_delay` has elapsed (`Condvar::wait_timeout` with the
//!   remaining budget — an early-arriving full batch skips the wait).
//! * **Predict** — the drained batch becomes one matrix, one
//!   `predict_batch` call, and each output row is routed back to its
//!   submitter's channel. `predict_batch` is bit-identical to per-row
//!   `predict`, so batching never changes a forecast.
//!
//! Backpressure: the queue is bounded by `queue_cap`; a `submit` into a
//! full queue fails immediately with [`SubmitError::QueueFull`] (the
//! server maps it to `429 Retry-After`) — memory stays bounded no
//! matter the offered load. Shutdown drains: requests already queued
//! are predicted and answered before the thread exits; later submits
//! fail with [`SubmitError::ShutDown`].

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tfb_math::matrix::Matrix;

/// A model the coalescer can drive: fixed-width inputs, fixed-width
/// outputs, one batched predict. Implemented by
/// [`tfb_artifact::ServableModel`]; tests substitute doubles.
pub trait BatchPredictor: Send + Sync {
    /// Values per input window.
    fn input_len(&self) -> usize;

    /// Values per forecast.
    fn output_len(&self) -> usize;

    /// Predicts every row of `windows`; row `r` of the result answers
    /// input row `r`. Must be bit-identical to predicting row by row.
    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String>;
}

impl BatchPredictor for tfb_artifact::ServableModel {
    fn input_len(&self) -> usize {
        self.lookback() * self.dim()
    }

    fn output_len(&self) -> usize {
        self.horizon() * self.dim()
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        self.forecast_batch(windows).map_err(|e| e.to_string())
    }
}

/// Tuning knobs for the coalescer.
#[derive(Debug, Clone)]
pub struct CoalescerConfig {
    /// Largest batch one predict call carries.
    pub max_batch: usize,
    /// Longest a request waits for co-travelers after arriving first.
    pub max_delay: Duration,
    /// Bound on queued (accepted, not yet predicted) requests; submits
    /// beyond it shed with [`SubmitError::QueueFull`].
    pub queue_cap: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 256,
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (HTTP 429).
    QueueFull,
    /// The coalescer is draining for shutdown (HTTP 503).
    ShutDown,
    /// The window's length does not match the model (HTTP 400).
    BadWindow {
        /// Values the request carried.
        got: usize,
        /// Values the model expects.
        expected: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::ShutDown => write!(f, "server is shutting down"),
            SubmitError::BadWindow { got, expected } => {
                write!(f, "window carries {got} values, model expects {expected}")
            }
        }
    }
}

/// One answered request: the forecast plus the batcher-side timing the
/// server folds into the request's trace.
///
/// `queue_ns` is the wait from submit until the batcher opened this
/// batch, `collect_ns` the co-traveler wait until the drain, and
/// `infer_ns` the amortized share of the batched forward pass
/// (`predict_batch` elapsed / batch size) — so summing a request's
/// phases never exceeds its end-to-end latency. `queue_ns` and
/// `collect_ns` are zero for requests submitted while no run was
/// recording (the submit-side clock read is skipped).
#[derive(Debug)]
pub struct BatchOutcome {
    /// The forecast row answering this request's window.
    pub forecast: Vec<f64>,
    /// Nanoseconds from submit until the batch opened.
    pub queue_ns: u64,
    /// Nanoseconds waiting for co-travelers until the drain.
    pub collect_ns: u64,
    /// Amortized share of the batched forward pass, in nanoseconds.
    pub infer_ns: u64,
    /// Process-unique id of the batch that carried this request.
    pub batch_id: u64,
    /// How many requests shared that batch.
    pub batch_size: usize,
}

/// One queued request: its window, the channel its forecast returns
/// on, and (when a run is recording) its submit time for queue-wait
/// attribution.
struct Pending {
    window: Vec<f64>,
    reply: mpsc::Sender<Result<BatchOutcome, String>>,
    submitted: Option<Instant>,
}

struct State {
    queue: VecDeque<Pending>,
    shutting_down: bool,
    /// High-water mark of the queue depth over the coalescer's life.
    hwm: usize,
}

struct Shared {
    state: Mutex<State>,
    notify: Condvar,
    cfg: CoalescerConfig,
}

/// The micro-batching front of a [`BatchPredictor`]. Submitters block
/// on their reply channel; one background thread forms and runs
/// batches.
pub struct Coalescer {
    shared: Arc<Shared>,
    input_len: usize,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl Coalescer {
    /// Starts the batcher thread over `predictor`.
    pub fn start(predictor: Arc<dyn BatchPredictor>, cfg: CoalescerConfig) -> Coalescer {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
                hwm: 0,
            }),
            notify: Condvar::new(),
            cfg,
        });
        let input_len = predictor.input_len();
        let worker_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("tfb-serve-batcher".to_string())
            .spawn(move || batcher_loop(worker_shared, predictor))
            .expect("spawn batcher thread");
        Coalescer {
            shared,
            input_len,
            batcher: Some(batcher),
        }
    }

    /// Enqueues one window. Returns the channel its forecast (or a
    /// predict error) arrives on, or sheds immediately when the queue
    /// is full, the length is wrong, or shutdown has begun.
    pub fn submit(
        &self,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<BatchOutcome, String>>, SubmitError> {
        if window.len() != self.input_len {
            return Err(SubmitError::BadWindow {
                got: window.len(),
                expected: self.input_len,
            });
        }
        let (reply, rx) = mpsc::channel();
        // The clock read only happens while a run is recording; the
        // disarmed path stays free of time syscalls.
        let submitted = tfb_obs::enabled().then(Instant::now);
        {
            let mut state = self.shared.state.lock().expect("coalescer state poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShutDown);
            }
            if state.queue.len() >= self.shared.cfg.queue_cap {
                tfb_obs::counter!("serve/shed").add(1);
                return Err(SubmitError::QueueFull);
            }
            state.queue.push_back(Pending {
                window,
                reply,
                submitted,
            });
            let depth = state.queue.len();
            tfb_obs::gauge!("serve/queue_depth").set(depth as f64);
            if depth > state.hwm {
                state.hwm = depth;
                tfb_obs::gauge!("serve/queue_hwm").set(depth as f64);
            }
        }
        self.shared.notify.notify_one();
        Ok(rx)
    }

    /// Queued-but-unpredicted request count (test/metrics hook).
    pub fn backlog(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("coalescer state poisoned")
            .queue
            .len()
    }

    /// Drains and stops: already-queued requests are still predicted
    /// and answered; subsequent submits shed with `ShutDown`.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared
            .state
            .lock()
            .expect("coalescer state poisoned")
            .shutting_down = true;
        self.shared.notify.notify_all();
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

fn batcher_loop(shared: Arc<Shared>, predictor: Arc<dyn BatchPredictor>) {
    let cfg = &shared.cfg;
    loop {
        let (batch, opened) = {
            let mut state = shared.state.lock().expect("coalescer state poisoned");
            // Idle: sleep until a request arrives or shutdown drains out.
            while state.queue.is_empty() {
                if state.shutting_down {
                    return;
                }
                state = shared.notify.wait(state).expect("coalescer state poisoned");
            }
            // Filling: from the first request's arrival, wait for
            // co-travelers until the batch fills or the delay budget is
            // spent. Shutdown short-circuits the wait, not the drain.
            let opened = Instant::now();
            let deadline = opened + cfg.max_delay;
            while state.queue.len() < cfg.max_batch && !state.shutting_down {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .notify
                    .wait_timeout(state, deadline - now)
                    .expect("coalescer state poisoned");
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = state.queue.len().min(cfg.max_batch);
            let batch = state.queue.drain(..take).collect::<Vec<Pending>>();
            tfb_obs::gauge!("serve/queue_depth").set(state.queue.len() as f64);
            (batch, opened)
        };
        // Predict outside the lock so submitters never wait on the model.
        run_batch(&*predictor, batch, opened, cfg.max_batch);
    }
}

/// Batch ids are process-unique and monotone; the `serve.batch` span and
/// every request routed through the batch carry the same id, which is
/// what the Perfetto exporter keys its flow arrows on.
static BATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn run_batch(
    predictor: &dyn BatchPredictor,
    batch: Vec<Pending>,
    opened: Instant,
    max_batch: usize,
) {
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    let batch_id = BATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
    let drained = Instant::now();
    tfb_obs::histogram!("serve/batch_size").record(n as f64);
    tfb_obs::counter!("serve/batched_requests").add(n as u64);
    tfb_obs::counter!("serve/batches").add(1);
    tfb_obs::gauge!("serve/batch_fill_ratio").set(n as f64 / max_batch as f64);
    let width = predictor.input_len();
    let mut flat = Vec::with_capacity(n * width);
    for p in &batch {
        flat.extend_from_slice(&p.window);
    }
    let windows = match Matrix::from_vec(n, width, flat) {
        Ok(m) => m,
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.to_string()));
            }
            return;
        }
    };
    let infer_started = Instant::now();
    let result = {
        let _span = tfb_obs::span!("serve.batch")
            .record("batch_id", batch_id as f64)
            .record("rows", n as f64);
        predictor.predict_batch(&windows)
    };
    // Amortize the batched forward pass evenly: each co-traveler's
    // `infer` share is elapsed / batch size, so one batch never counts
    // its model time more than once across the requests it served.
    let infer_ns = (infer_started.elapsed().as_nanos() as u64) / n as u64;
    match result {
        Ok(out) => {
            let w = predictor.output_len();
            debug_assert_eq!(out.cols(), w);
            for (r, p) in batch.into_iter().enumerate() {
                let (queue_ns, collect_ns) = wait_split(p.submitted, opened, drained);
                let _ = p.reply.send(Ok(BatchOutcome {
                    forecast: out.row(r).to_vec(),
                    queue_ns,
                    collect_ns,
                    infer_ns,
                    batch_id,
                    batch_size: n,
                }));
            }
        }
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Splits one request's pre-inference wait at the moment its batch
/// opened: `queue` is submit → open, `collect` is open → drain (from
/// the submit when the request arrived mid-fill). The two always sum to
/// exactly submit → drain, and both are zero for untraced requests.
fn wait_split(submitted: Option<Instant>, opened: Instant, drained: Instant) -> (u64, u64) {
    let Some(submitted) = submitted else {
        return (0, 0);
    };
    let queue = opened.saturating_duration_since(submitted);
    let collect = drained.saturating_duration_since(submitted.max(opened));
    (queue.as_nanos() as u64, collect.as_nanos() as u64)
}

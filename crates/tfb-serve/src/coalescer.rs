//! The sharded, deadline-driven micro-batching coalescer: concurrent
//! forecast requests are funneled through `predict_batch` calls, one
//! batcher thread per shard, with cross-shard work stealing.
//!
//! State machine of each shard's batcher thread:
//!
//! ```text
//!        ┌────────── queue empty ──────────┐
//!        v                                 │
//!   [ Idle ] ─ request arrives ──────> [ Filling ]
//!        │  ^                              │  batch full, or the
//!        │  └─ stole from a sibling        │  close deadline passes
//!        steal poll                        v
//!        └──────── route responses ── [ Predict ]
//! ```
//!
//! * **Idle** — the thread sleeps on its shard's condvar with a short
//!   steal-poll timeout; a local `submit` wakes it immediately, and on
//!   each poll it scans sibling shards and steals the older half of any
//!   backlog it finds (requests keep their arrival times, so stolen
//!   work keeps its latency budget).
//! * **Filling** — batches close on a **deadline**, not a fixed timer:
//!   the batch drains the moment it holds `max_batch` requests, or at
//!   `min(oldest_arrival + budget, open + coalesce_hint)` — so a shard
//!   that was idle closes its first batch after only the short coalesce
//!   hint, while a request that already sat out most of its latency
//!   budget (behind a long predict, or stolen from a deep queue) is
//!   answered the moment the batcher sees it.
//! * **Predict** — the drained batch becomes one matrix, one
//!   `predict_batch` call, and each output row is routed back to its
//!   submitter's channel. `predict_batch` is bit-identical to per-row
//!   `predict`, so neither batching, the shard a request lands on, nor
//!   a steal ever changes a forecast.
//!
//! Backpressure: every shard's queue is bounded by `queue_cap`; a
//! `submit` into a full shard fails immediately with
//! [`SubmitError::QueueFull`] (the server maps it to `429 Retry-After`)
//! — memory stays bounded no matter the offered load. Shutdown drains:
//! requests already queued are predicted and answered before the
//! batcher threads exit; later submits fail with
//! [`SubmitError::ShutDown`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tfb_math::matrix::Matrix;

/// A model the coalescer can drive: fixed-width inputs, fixed-width
/// outputs, one batched predict. Implemented by
/// [`tfb_artifact::ServableModel`]; tests substitute doubles.
pub trait BatchPredictor: Send + Sync {
    /// Values per input window.
    fn input_len(&self) -> usize;

    /// Values per forecast.
    fn output_len(&self) -> usize;

    /// Predicts every row of `windows`; row `r` of the result answers
    /// input row `r`. Must be bit-identical to predicting row by row.
    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String>;
}

impl BatchPredictor for tfb_artifact::ServableModel {
    fn input_len(&self) -> usize {
        self.lookback() * self.dim()
    }

    fn output_len(&self) -> usize {
        self.horizon() * self.dim()
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        self.forecast_batch(windows).map_err(|e| e.to_string())
    }
}

/// Tuning knobs for the coalescer.
#[derive(Debug, Clone)]
pub struct CoalescerConfig {
    /// Shard (batcher thread) count; `0` resolves to one per core.
    pub shards: usize,
    /// Largest batch one predict call carries.
    pub max_batch: usize,
    /// Hard latency budget for a queued request: a batch closes no
    /// later than the moment its oldest request's budget is about to be
    /// spent on queueing alone.
    pub budget: Duration,
    /// Co-traveler wait after a batch opens on a previously idle shard
    /// — the only latency a lone request pays beyond its own work.
    pub coalesce_hint: Duration,
    /// Bound on queued (accepted, not yet predicted) requests *per
    /// shard*; submits beyond it shed with [`SubmitError::QueueFull`].
    pub queue_cap: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            shards: 0,
            max_batch: 64,
            budget: Duration::from_millis(2),
            coalesce_hint: Duration::from_micros(150),
            queue_cap: 256,
        }
    }
}

impl CoalescerConfig {
    /// `shards` with `0` resolved to the machine's parallelism.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// How long an idle shard sleeps between steal scans. Local submits
/// cut the wait short via the condvar, so this only bounds how stale a
/// *sibling's* backlog can get before an idle shard picks it up.
const STEAL_POLL: Duration = Duration::from_millis(1);

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (HTTP 429).
    QueueFull,
    /// The coalescer is draining for shutdown (HTTP 503).
    ShutDown,
    /// The window's length does not match the model (HTTP 400).
    BadWindow {
        /// Values the request carried.
        got: usize,
        /// Values the model expects.
        expected: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::ShutDown => write!(f, "server is shutting down"),
            SubmitError::BadWindow { got, expected } => {
                write!(f, "window carries {got} values, model expects {expected}")
            }
        }
    }
}

/// One answered request: the forecast plus the batcher-side timing the
/// server folds into the request's trace.
///
/// `queue_ns` is the wait from submit until the batcher opened this
/// batch, `collect_ns` the co-traveler wait until the drain, and
/// `infer_ns` the amortized share of the batched forward pass
/// (`predict_batch` elapsed / batch size) — so summing a request's
/// phases never exceeds its end-to-end latency.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The forecast row answering this request's window.
    pub forecast: Vec<f64>,
    /// Nanoseconds from submit until the batch opened.
    pub queue_ns: u64,
    /// Nanoseconds waiting for co-travelers until the drain.
    pub collect_ns: u64,
    /// Amortized share of the batched forward pass, in nanoseconds.
    pub infer_ns: u64,
    /// Process-unique id of the batch that carried this request.
    pub batch_id: u64,
    /// How many requests shared that batch.
    pub batch_size: usize,
    /// Which shard's batcher ran the batch.
    pub shard: usize,
}

/// One queued request: its window, the model that must answer it, the
/// channel its forecast returns on, and its arrival time — read
/// unconditionally, because the deadline close is driven by request
/// age, not a timer.
///
/// `key` identifies the model instance (the `Arc`'s address): a batch
/// only ever carries requests with one key, because one `predict_batch`
/// call runs one model. Single-model serving therefore batches exactly
/// as before; fleet serving partitions each drain by model.
struct Pending {
    window: Vec<f64>,
    model: Arc<dyn BatchPredictor>,
    key: usize,
    reply: mpsc::Sender<Result<BatchOutcome, String>>,
    arrived: Instant,
}

/// The per-instance batching key of a model handle.
fn model_key(model: &Arc<dyn BatchPredictor>) -> usize {
    Arc::as_ptr(model) as *const () as usize
}

struct ShardState {
    queue: VecDeque<Pending>,
    shutting_down: bool,
    /// High-water mark of the queue depth over the shard's life.
    hwm: usize,
}

/// Per-shard observability handles. Metric names carry the shard index
/// (`serve/shard0/queue_depth`, …); the statics are leaked once per
/// shard at startup, which is what the per-call-site registration model
/// requires for dynamically-numbered series.
struct ShardMetrics {
    depth: &'static tfb_obs::Gauge,
    hwm: &'static tfb_obs::Gauge,
    fill: &'static tfb_obs::Gauge,
    batches: &'static tfb_obs::Counter,
    batched_requests: &'static tfb_obs::Counter,
    steals: &'static tfb_obs::Counter,
}

impl ShardMetrics {
    fn new(shard: usize) -> ShardMetrics {
        fn leak_name(shard: usize, what: &str) -> &'static str {
            Box::leak(format!("serve/shard{shard}/{what}").into_boxed_str())
        }
        fn gauge(shard: usize, what: &str) -> &'static tfb_obs::Gauge {
            Box::leak(Box::new(tfb_obs::Gauge::new(leak_name(shard, what))))
        }
        fn counter(shard: usize, what: &str) -> &'static tfb_obs::Counter {
            Box::leak(Box::new(tfb_obs::Counter::new(leak_name(shard, what))))
        }
        ShardMetrics {
            depth: gauge(shard, "queue_depth"),
            hwm: gauge(shard, "queue_hwm"),
            fill: gauge(shard, "batch_fill"),
            batches: counter(shard, "batches"),
            batched_requests: counter(shard, "batched_requests"),
            steals: counter(shard, "steals"),
        }
    }
}

struct Shard {
    state: Mutex<ShardState>,
    notify: Condvar,
    metrics: ShardMetrics,
    /// Requests this shard stole from siblings (also on the metrics
    /// counter; the atomic keeps the count readable without arming obs).
    steals: AtomicU64,
}

struct Inner {
    shards: Vec<Shard>,
    cfg: CoalescerConfig,
}

/// The micro-batching front of a [`BatchPredictor`]. Submitters block
/// on their reply channel; one batcher thread per shard forms and runs
/// batches, stealing across shards when its own queue is empty.
pub struct Coalescer {
    inner: Arc<Inner>,
    /// The model `submit`/`submit_to` route to; `submit_model` routes
    /// per-request instead.
    default: Arc<dyn BatchPredictor>,
    input_len: usize,
    round_robin: AtomicUsize,
    batchers: Vec<std::thread::JoinHandle<()>>,
}

impl Coalescer {
    /// Starts one batcher thread per shard over `predictor`.
    pub fn start(predictor: Arc<dyn BatchPredictor>, cfg: CoalescerConfig) -> Coalescer {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shards = cfg.resolved_shards();
        let inner = Arc::new(Inner {
            shards: (0..shards)
                .map(|i| Shard {
                    state: Mutex::new(ShardState {
                        queue: VecDeque::new(),
                        shutting_down: false,
                        hwm: 0,
                    }),
                    notify: Condvar::new(),
                    metrics: ShardMetrics::new(i),
                    steals: AtomicU64::new(0),
                })
                .collect(),
            cfg,
        });
        tfb_obs::gauge!("serve/shards").set(shards as f64);
        let input_len = predictor.input_len();
        let batchers = (0..shards)
            .map(|i| {
                let worker_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tfb-serve-shard{i}"))
                    .spawn(move || batcher_loop(worker_inner, i))
                    .expect("spawn batcher thread")
            })
            .collect();
        Coalescer {
            inner,
            default: predictor,
            input_len,
            round_robin: AtomicUsize::new(0),
            batchers,
        }
    }

    /// Shard count the coalescer is running with.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Enqueues one window on the next shard round-robin. Returns the
    /// channel its forecast (or a predict error) arrives on, or sheds
    /// immediately when the shard's queue is full, the length is wrong,
    /// or shutdown has begun.
    pub fn submit(
        &self,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<BatchOutcome, String>>, SubmitError> {
        let shard = self.round_robin.fetch_add(1, Ordering::Relaxed) % self.shards();
        self.submit_to(shard, window)
    }

    /// [`submit`](Coalescer::submit) onto a specific shard — the server
    /// pins each connection to its accept shard so the hot path has no
    /// shared round-robin counter.
    pub fn submit_to(
        &self,
        shard: usize,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<BatchOutcome, String>>, SubmitError> {
        if window.len() != self.input_len {
            return Err(SubmitError::BadWindow {
                got: window.len(),
                expected: self.input_len,
            });
        }
        let model = Arc::clone(&self.default);
        self.enqueue(shard, model, window)
    }

    /// [`submit_to`](Coalescer::submit_to) routed to a specific model —
    /// the fleet server's per-request path. The window is validated
    /// against *that* model's geometry, and the batcher only ever
    /// groups it with co-travelers bound for the same model instance.
    pub fn submit_model(
        &self,
        shard: usize,
        model: Arc<dyn BatchPredictor>,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<BatchOutcome, String>>, SubmitError> {
        if window.len() != model.input_len() {
            return Err(SubmitError::BadWindow {
                got: window.len(),
                expected: model.input_len(),
            });
        }
        self.enqueue(shard, model, window)
    }

    fn enqueue(
        &self,
        shard: usize,
        model: Arc<dyn BatchPredictor>,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<BatchOutcome, String>>, SubmitError> {
        let key = model_key(&model);
        let shard = &self.inner.shards[shard % self.shards()];
        let (reply, rx) = mpsc::channel();
        let arrived = Instant::now();
        let hwm_spike;
        {
            let mut state = shard.state.lock().expect("coalescer state poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShutDown);
            }
            if state.queue.len() >= self.inner.cfg.queue_cap {
                tfb_obs::counter!("serve/shed").add(1);
                drop(state);
                // A shed is a flight trigger: capture the recent past
                // (rate-limited) outside the shard lock.
                tfb_obs::flight::dump("serve-shed");
                return Err(SubmitError::QueueFull);
            }
            state.queue.push_back(Pending {
                window,
                model,
                key,
                reply,
                arrived,
            });
            let depth = state.queue.len();
            shard.metrics.depth.set(depth as f64);
            tfb_obs::gauge!("serve/queue_depth").set(depth as f64);
            hwm_spike = depth > state.hwm && depth * 4 >= self.inner.cfg.queue_cap * 3;
            if depth > state.hwm {
                state.hwm = depth;
                shard.metrics.hwm.set(depth as f64);
                tfb_obs::gauge!("serve/queue_hwm").set(depth as f64);
            }
        }
        shard.notify.notify_one();
        if hwm_spike {
            // A new high-water mark in the top quarter of the queue
            // bound means shedding is imminent — dump before it happens.
            tfb_obs::flight::dump("queue-hwm");
        }
        Ok(rx)
    }

    /// Queued-but-unpredicted request count across all shards
    /// (test/metrics hook).
    pub fn backlog(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.state
                    .lock()
                    .expect("coalescer state poisoned")
                    .queue
                    .len()
            })
            .sum()
    }

    /// Requests answered by a different shard than the one they were
    /// submitted to, over the coalescer's life.
    pub fn steal_count(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.steals.load(Ordering::Relaxed))
            .sum()
    }

    /// Drains and stops: already-queued requests are still predicted
    /// and answered; subsequent submits shed with `ShutDown`.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.batchers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        for shard in &self.inner.shards {
            shard
                .state
                .lock()
                .expect("coalescer state poisoned")
                .shutting_down = true;
            shard.notify.notify_all();
        }
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.batchers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Scans the sibling shards of `own` and steals the older half of the
/// first backlog found (two or more queued requests — a lone request is
/// left to its own shard's hint window to avoid ping-pong). Uses
/// `try_lock` so a busy sibling is skipped, never waited on.
fn steal_from_siblings(inner: &Inner, own: usize) -> Vec<Pending> {
    let n = inner.shards.len();
    for step in 1..n {
        let victim_idx = (own + step) % n;
        let victim = &inner.shards[victim_idx];
        let Ok(mut state) = victim.state.try_lock() else {
            continue;
        };
        if state.shutting_down || state.queue.len() < 2 {
            continue;
        }
        // Oldest half: stolen requests are the ones closest to their
        // budget, and FIFO order within each shard is preserved.
        let take = (state.queue.len() / 2).min(inner.cfg.max_batch);
        let stolen: Vec<Pending> = state.queue.drain(..take).collect();
        victim.metrics.depth.set(state.queue.len() as f64);
        drop(state);
        let thief = &inner.shards[own];
        thief
            .steals
            .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        thief.metrics.steals.add(stolen.len() as u64);
        tfb_obs::counter!("serve/steals").add(stolen.len() as u64);
        tfb_obs::steal_event(victim_idx, own, stolen.len());
        return stolen;
    }
    Vec::new()
}

fn batcher_loop(inner: Arc<Inner>, shard_idx: usize) {
    let cfg = &inner.cfg;
    // Registered for the sampling profiler: the batcher's `serve.batch`
    // spans become its sampled stack.
    let _profiled =
        tfb_obs::flight::profiler::register_thread(&format!("shard{shard_idx}-batcher"));
    loop {
        let (batch, opened) = {
            let shard = &inner.shards[shard_idx];
            let mut state = shard.state.lock().expect("coalescer state poisoned");
            // Idle: wake on a local submit, poll siblings for steals.
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutting_down {
                    return;
                }
                if inner.shards.len() > 1 {
                    drop(state);
                    let stolen = steal_from_siblings(&inner, shard_idx);
                    state = shard.state.lock().expect("coalescer state poisoned");
                    if !stolen.is_empty() {
                        state.queue.extend(stolen);
                        continue;
                    }
                    if !state.queue.is_empty() || state.shutting_down {
                        continue;
                    }
                }
                let (next, _) = shard
                    .notify
                    .wait_timeout(state, STEAL_POLL)
                    .expect("coalescer state poisoned");
                state = next;
            }
            // Filling: close on the deadline, not a fixed timer — the
            // moment the batch is full, the oldest request's budget is
            // about to run out, or the coalesce hint has been spent
            // waiting for co-travelers.
            let opened = Instant::now();
            let oldest = state.queue.front().expect("non-empty queue").arrived;
            let deadline = (oldest + cfg.budget).min(opened + cfg.coalesce_hint);
            while state.queue.len() < cfg.max_batch && !state.shutting_down {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shard
                    .notify
                    .wait_timeout(state, deadline - now)
                    .expect("coalescer state poisoned");
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            // One batch = one model: take the oldest request's key and
            // drain every queued co-traveler bound for the same model
            // instance, preserving FIFO order among the rest. A mixed
            // queue therefore drains per-model oldest-first, and a
            // request is never grouped into another model's forward
            // pass.
            let key = state.queue.front().expect("non-empty queue").key;
            let mut batch = Vec::new();
            let mut i = 0;
            while i < state.queue.len() && batch.len() < cfg.max_batch {
                if state.queue[i].key == key {
                    batch.push(state.queue.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            shard.metrics.depth.set(state.queue.len() as f64);
            tfb_obs::gauge!("serve/queue_depth").set(state.queue.len() as f64);
            (batch, opened)
        };
        // Predict outside the lock so submitters never wait on the model.
        run_batch(&inner, shard_idx, batch, opened);
    }
}

/// Batch ids are process-unique and monotone; the `serve.batch` span and
/// every request routed through the batch carry the same id, which is
/// what the Perfetto exporter keys its flow arrows on.
static BATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn run_batch(inner: &Inner, shard_idx: usize, batch: Vec<Pending>, opened: Instant) {
    if batch.is_empty() {
        return;
    }
    // Every request in the batch carries the same model (same key), so
    // the first one's handle drives the whole forward pass.
    let predictor = Arc::clone(&batch[0].model);
    let predictor = &*predictor;
    let n = batch.len();
    let max_batch = inner.cfg.max_batch;
    let shard = &inner.shards[shard_idx];
    let batch_id = BATCH_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let drained = Instant::now();
    tfb_obs::histogram!("serve/batch_size").record(n as f64);
    tfb_obs::counter!("serve/batched_requests").add(n as u64);
    tfb_obs::counter!("serve/batches").add(1);
    tfb_obs::gauge!("serve/batch_fill_ratio").set(n as f64 / max_batch as f64);
    shard.metrics.batches.add(1);
    shard.metrics.batched_requests.add(n as u64);
    shard.metrics.fill.set(n as f64 / max_batch as f64);
    let width = predictor.input_len();
    let mut flat = Vec::with_capacity(n * width);
    for p in &batch {
        flat.extend_from_slice(&p.window);
    }
    let windows = match Matrix::from_vec(n, width, flat) {
        Ok(m) => m,
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.to_string()));
            }
            return;
        }
    };
    let infer_started = Instant::now();
    let result = {
        let _span = tfb_obs::span!("serve.batch")
            .record("batch_id", batch_id as f64)
            .record("shard", shard_idx as f64)
            .record("rows", n as f64);
        predictor.predict_batch(&windows)
    };
    // Amortize the batched forward pass evenly: each co-traveler's
    // `infer` share is elapsed / batch size, so one batch never counts
    // its model time more than once across the requests it served.
    let infer_ns = (infer_started.elapsed().as_nanos() as u64) / n as u64;
    match result {
        Ok(out) => {
            let w = predictor.output_len();
            debug_assert_eq!(out.cols(), w);
            for (r, p) in batch.into_iter().enumerate() {
                let (queue_ns, collect_ns) = wait_split(p.arrived, opened, drained);
                let _ = p.reply.send(Ok(BatchOutcome {
                    forecast: out.row(r).to_vec(),
                    queue_ns,
                    collect_ns,
                    infer_ns,
                    batch_id,
                    batch_size: n,
                    shard: shard_idx,
                }));
            }
        }
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Splits one request's pre-inference wait at the moment its batch
/// opened: `queue` is submit → open, `collect` is open → drain (from
/// the submit when the request arrived mid-fill). The two always sum to
/// exactly submit → drain.
fn wait_split(arrived: Instant, opened: Instant, drained: Instant) -> (u64, u64) {
    let queue = opened.saturating_duration_since(arrived);
    let collect = drained.saturating_duration_since(arrived.max(opened));
    (queue.as_nanos() as u64, collect.as_nanos() as u64)
}

//! The adaptive micro-batching coalescer: concurrent forecast requests
//! are collected for up to a configurable deadline (or until a batch
//! fills) and funneled through one `predict_batch` call.
//!
//! State machine of the batcher thread:
//!
//! ```text
//!          ┌──────── queue empty ────────┐
//!          v                             │
//!     [ Idle ] ── request arrives ─> [ Filling ]
//!          ^                             │  batch full, or
//!          │                             │  max_delay since first
//!          │                             v
//!          └──── route responses ── [ Predict ]
//! ```
//!
//! * **Idle** — the thread sleeps on a condvar; a `submit` wakes it.
//! * **Filling** — from the first request's arrival, the thread keeps
//!   accepting more until `max_batch` requests are queued or
//!   `max_delay` has elapsed (`Condvar::wait_timeout` with the
//!   remaining budget — an early-arriving full batch skips the wait).
//! * **Predict** — the drained batch becomes one matrix, one
//!   `predict_batch` call, and each output row is routed back to its
//!   submitter's channel. `predict_batch` is bit-identical to per-row
//!   `predict`, so batching never changes a forecast.
//!
//! Backpressure: the queue is bounded by `queue_cap`; a `submit` into a
//! full queue fails immediately with [`SubmitError::QueueFull`] (the
//! server maps it to `429 Retry-After`) — memory stays bounded no
//! matter the offered load. Shutdown drains: requests already queued
//! are predicted and answered before the thread exits; later submits
//! fail with [`SubmitError::ShutDown`].

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tfb_math::matrix::Matrix;

/// A model the coalescer can drive: fixed-width inputs, fixed-width
/// outputs, one batched predict. Implemented by
/// [`tfb_artifact::ServableModel`]; tests substitute doubles.
pub trait BatchPredictor: Send + Sync {
    /// Values per input window.
    fn input_len(&self) -> usize;

    /// Values per forecast.
    fn output_len(&self) -> usize;

    /// Predicts every row of `windows`; row `r` of the result answers
    /// input row `r`. Must be bit-identical to predicting row by row.
    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String>;
}

impl BatchPredictor for tfb_artifact::ServableModel {
    fn input_len(&self) -> usize {
        self.lookback() * self.dim()
    }

    fn output_len(&self) -> usize {
        self.horizon() * self.dim()
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        self.forecast_batch(windows).map_err(|e| e.to_string())
    }
}

/// Tuning knobs for the coalescer.
#[derive(Debug, Clone)]
pub struct CoalescerConfig {
    /// Largest batch one predict call carries.
    pub max_batch: usize,
    /// Longest a request waits for co-travelers after arriving first.
    pub max_delay: Duration,
    /// Bound on queued (accepted, not yet predicted) requests; submits
    /// beyond it shed with [`SubmitError::QueueFull`].
    pub queue_cap: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 256,
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (HTTP 429).
    QueueFull,
    /// The coalescer is draining for shutdown (HTTP 503).
    ShutDown,
    /// The window's length does not match the model (HTTP 400).
    BadWindow {
        /// Values the request carried.
        got: usize,
        /// Values the model expects.
        expected: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::ShutDown => write!(f, "server is shutting down"),
            SubmitError::BadWindow { got, expected } => {
                write!(f, "window carries {got} values, model expects {expected}")
            }
        }
    }
}

/// One queued request: its window and the channel its forecast returns
/// on.
struct Pending {
    window: Vec<f64>,
    reply: mpsc::Sender<Result<Vec<f64>, String>>,
}

struct State {
    queue: VecDeque<Pending>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    notify: Condvar,
    cfg: CoalescerConfig,
}

/// The micro-batching front of a [`BatchPredictor`]. Submitters block
/// on their reply channel; one background thread forms and runs
/// batches.
pub struct Coalescer {
    shared: Arc<Shared>,
    input_len: usize,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl Coalescer {
    /// Starts the batcher thread over `predictor`.
    pub fn start(predictor: Arc<dyn BatchPredictor>, cfg: CoalescerConfig) -> Coalescer {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            notify: Condvar::new(),
            cfg,
        });
        let input_len = predictor.input_len();
        let worker_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("tfb-serve-batcher".to_string())
            .spawn(move || batcher_loop(worker_shared, predictor))
            .expect("spawn batcher thread");
        Coalescer {
            shared,
            input_len,
            batcher: Some(batcher),
        }
    }

    /// Enqueues one window. Returns the channel its forecast (or a
    /// predict error) arrives on, or sheds immediately when the queue
    /// is full, the length is wrong, or shutdown has begun.
    pub fn submit(
        &self,
        window: Vec<f64>,
    ) -> Result<mpsc::Receiver<Result<Vec<f64>, String>>, SubmitError> {
        if window.len() != self.input_len {
            return Err(SubmitError::BadWindow {
                got: window.len(),
                expected: self.input_len,
            });
        }
        let (reply, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("coalescer state poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShutDown);
            }
            if state.queue.len() >= self.shared.cfg.queue_cap {
                tfb_obs::counter!("serve/shed").add(1);
                return Err(SubmitError::QueueFull);
            }
            state.queue.push_back(Pending { window, reply });
        }
        self.shared.notify.notify_one();
        Ok(rx)
    }

    /// Queued-but-unpredicted request count (test/metrics hook).
    pub fn backlog(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("coalescer state poisoned")
            .queue
            .len()
    }

    /// Drains and stops: already-queued requests are still predicted
    /// and answered; subsequent submits shed with `ShutDown`.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared
            .state
            .lock()
            .expect("coalescer state poisoned")
            .shutting_down = true;
        self.shared.notify.notify_all();
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

fn batcher_loop(shared: Arc<Shared>, predictor: Arc<dyn BatchPredictor>) {
    let cfg = &shared.cfg;
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("coalescer state poisoned");
            // Idle: sleep until a request arrives or shutdown drains out.
            while state.queue.is_empty() {
                if state.shutting_down {
                    return;
                }
                state = shared.notify.wait(state).expect("coalescer state poisoned");
            }
            // Filling: from the first request's arrival, wait for
            // co-travelers until the batch fills or the delay budget is
            // spent. Shutdown short-circuits the wait, not the drain.
            let deadline = Instant::now() + cfg.max_delay;
            while state.queue.len() < cfg.max_batch && !state.shutting_down {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .notify
                    .wait_timeout(state, deadline - now)
                    .expect("coalescer state poisoned");
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = state.queue.len().min(cfg.max_batch);
            state.queue.drain(..take).collect::<Vec<Pending>>()
        };
        // Predict outside the lock so submitters never wait on the model.
        run_batch(&*predictor, batch);
    }
}

fn run_batch(predictor: &dyn BatchPredictor, batch: Vec<Pending>) {
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    tfb_obs::histogram!("serve/batch_size").record(n as f64);
    tfb_obs::counter!("serve/batched_requests").add(n as u64);
    tfb_obs::counter!("serve/batches").add(1);
    let width = predictor.input_len();
    let mut flat = Vec::with_capacity(n * width);
    for p in &batch {
        flat.extend_from_slice(&p.window);
    }
    let windows = match Matrix::from_vec(n, width, flat) {
        Ok(m) => m,
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.to_string()));
            }
            return;
        }
    };
    match predictor.predict_batch(&windows) {
        Ok(out) => {
            let w = predictor.output_len();
            debug_assert_eq!(out.cols(), w);
            for (r, p) in batch.into_iter().enumerate() {
                let _ = p.reply.send(Ok(out.row(r).to_vec()));
            }
        }
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

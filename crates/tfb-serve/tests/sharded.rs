//! Sharding guarantees: an N-shard server answers byte-for-byte what a
//! 1-shard server answers, and an idle shard steals a busy sibling's
//! backlog instead of sleeping next to it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tfb_artifact::{fit, ServableModel};
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_datagen::profiles::{profile_by_name, Scale};
use tfb_json::JsonValue;
use tfb_math::matrix::Matrix;
use tfb_serve::{serve, BatchPredictor, Coalescer, CoalescerConfig, ServerConfig, ServerHandle};

fn lr_server(shards: usize) -> (ServerHandle, usize) {
    let profile = profile_by_name("ILI").expect("profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    let artifact = fit("LR", &train, 16, 8, norm, String::new(), None).expect("fit");
    let model = ServableModel::from_artifact(artifact).expect("servable");
    let dim = model.dim();
    let handle = serve(
        model,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: CoalescerConfig {
                shards,
                ..CoalescerConfig::default()
            },
        },
    )
    .expect("serve");
    (handle, dim)
}

/// One request over its own connection; returns the raw body bytes.
fn forecast_body(addr: std::net::SocketAddr, window: &[f64]) -> Vec<u8> {
    let doc = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )]);
    let body = doc.compact();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "POST /forecast HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(
        status_line.contains("200"),
        "forecast failed: {status_line}"
    );
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
    }
    let mut reply = vec![0u8; content_length];
    reader.read_exact(&mut reply).expect("body");
    reply
}

#[test]
fn n_shard_server_answers_byte_identical_to_one_shard() {
    let (single, dim) = lr_server(1);
    let (sharded, _) = lr_server(4);
    assert_eq!(single.shards(), 1);
    assert_eq!(sharded.shards(), 4);
    let windows: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            (0..16 * dim)
                .map(|j| ((i * 31 + j * 7) % 100) as f64 * 0.13 - 5.0)
                .collect()
        })
        .collect();
    // Concurrent clients against the sharded server so requests really
    // spread across shards (each connection pins to the shard whose
    // accept loop won it); the single-shard answers are the reference.
    let sharded_addr = sharded.addr();
    let sharded_bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = windows
            .iter()
            .map(|w| scope.spawn(move || forecast_body(sharded_addr, w)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (w, sharded_body) in windows.iter().zip(&sharded_bodies) {
        let single_body = forecast_body(single.addr(), w);
        assert_eq!(
            single_body, *sharded_body,
            "sharded response bytes differ from single-shard for window {w:?}"
        );
    }
    sharded.shutdown();
    single.shutdown();
}

/// Output row = `[first input, batch row count]`, slow enough that a
/// second shard has time to notice the backlog.
struct SlowEcho {
    batches: Mutex<Vec<usize>>,
}

impl BatchPredictor for SlowEcho {
    fn input_len(&self) -> usize {
        2
    }

    fn output_len(&self) -> usize {
        2
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        self.batches.lock().unwrap().push(windows.rows());
        std::thread::sleep(Duration::from_millis(30));
        let mut out = Matrix::zeros(windows.rows(), 2);
        for r in 0..windows.rows() {
            out.data_mut()[r * 2] = windows.row(r)[0];
            out.data_mut()[r * 2 + 1] = windows.rows() as f64;
        }
        Ok(out)
    }
}

#[test]
fn idle_shard_steals_a_busy_siblings_backlog() {
    let predictor = Arc::new(SlowEcho {
        batches: Mutex::new(Vec::new()),
    });
    let coalescer = Coalescer::start(
        predictor as Arc<dyn BatchPredictor>,
        CoalescerConfig {
            shards: 2,
            max_batch: 2,
            queue_cap: 64,
            ..CoalescerConfig::default()
        },
    );
    // Everything lands on shard 0: its batcher takes a small batch into
    // a 30 ms predict, and the rest of the burst sits in shard 0's
    // queue while shard 1 idles — exactly what stealing exists for.
    let receivers: Vec<_> = (0..12)
        .map(|i| coalescer.submit_to(0, vec![i as f64, 1.0]).expect("submit"))
        .collect();
    for (i, rx) in receivers.into_iter().enumerate() {
        let out = rx.recv().expect("reply").expect("predict");
        assert_eq!(out.forecast[0], i as f64, "reply routed to wrong submitter");
    }
    assert!(
        coalescer.steal_count() > 0,
        "an idle shard never stole from a busy sibling's backlog"
    );
    coalescer.shutdown();
}

/// A shard-pinned submit and a round-robin submit answer identically;
/// the round-robin entry point spreads work without a server in front.
#[test]
fn round_robin_submit_spreads_across_shards() {
    let predictor = Arc::new(SlowEcho {
        batches: Mutex::new(Vec::new()),
    });
    let coalescer = Coalescer::start(
        predictor as Arc<dyn BatchPredictor>,
        CoalescerConfig {
            shards: 3,
            max_batch: 8,
            queue_cap: 64,
            ..CoalescerConfig::default()
        },
    );
    assert_eq!(coalescer.shards(), 3);
    let receivers: Vec<_> = (0..9)
        .map(|i| coalescer.submit(vec![i as f64, 0.0]).expect("submit"))
        .collect();
    let mut shards_seen = std::collections::BTreeSet::new();
    for (i, rx) in receivers.into_iter().enumerate() {
        let out = rx.recv().expect("reply").expect("predict");
        assert_eq!(out.forecast[0], i as f64);
        shards_seen.insert(out.shard);
    }
    // Stealing may consolidate work, but with three shards round-robin
    // must involve more than one of them.
    assert!(
        shards_seen.len() > 1 || coalescer.steal_count() > 0,
        "round-robin submit never left shard {shards_seen:?}"
    );
    coalescer.shutdown();
}

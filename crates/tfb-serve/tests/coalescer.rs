//! Coalescer guarantees under concurrency: responses route to the
//! correct submitter, batching never changes a forecast, the bounded
//! queue sheds, and shutdown drains instead of dropping.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tfb_artifact::{fit, ServableModel};
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_datagen::profiles::{profile_by_name, Scale};
use tfb_math::matrix::Matrix;
use tfb_serve::{BatchPredictor, Coalescer, CoalescerConfig, SubmitError};

/// Output row = `[2 * first input value, sum of inputs]` — a response
/// that betrays any routing mix-up.
struct EchoPredictor {
    input_len: usize,
    batch_sizes: Mutex<Vec<usize>>,
    delay: Duration,
}

impl EchoPredictor {
    fn new(input_len: usize, delay: Duration) -> EchoPredictor {
        EchoPredictor {
            input_len,
            batch_sizes: Mutex::new(Vec::new()),
            delay,
        }
    }
}

impl BatchPredictor for EchoPredictor {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn output_len(&self) -> usize {
        2
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        self.batch_sizes.lock().unwrap().push(windows.rows());
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let mut out = Matrix::zeros(windows.rows(), 2);
        for r in 0..windows.rows() {
            let row = windows.row(r);
            out.data_mut()[r * 2] = row[0] * 2.0;
            out.data_mut()[r * 2 + 1] = row.iter().sum();
        }
        Ok(out)
    }
}

fn submit_concurrently(
    coalescer: &Arc<Coalescer>,
    n: usize,
    width: usize,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let coalescer = Arc::clone(coalescer);
                scope.spawn(move || {
                    let window: Vec<f64> = (0..width).map(|j| (i * width + j) as f64).collect();
                    let rx = coalescer.submit(window.clone()).expect("submit");
                    let out = rx.recv().expect("reply").expect("predict");
                    assert!(out.batch_id > 0, "batch ids start at 1");
                    assert!(out.batch_size >= 1, "batch size must be positive");
                    (window, out.forecast)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results
}

#[test]
fn responses_route_to_the_correct_submitter() {
    let predictor = Arc::new(EchoPredictor::new(4, Duration::from_millis(1)));
    let coalescer = Arc::new(Coalescer::start(
        Arc::clone(&predictor) as Arc<dyn BatchPredictor>,
        CoalescerConfig::default(),
    ));
    for (window, forecast) in submit_concurrently(&coalescer, 48, 4) {
        assert_eq!(forecast.len(), 2);
        assert_eq!(
            forecast[0],
            window[0] * 2.0,
            "window {window:?} got a stranger's reply"
        );
        assert_eq!(forecast[1], window.iter().sum::<f64>());
    }
}

#[test]
fn concurrent_load_actually_batches() {
    // A slow predictor guarantees later submitters pile up while the
    // first batch runs.
    let predictor = Arc::new(EchoPredictor::new(3, Duration::from_millis(20)));
    let coalescer = Arc::new(Coalescer::start(
        Arc::clone(&predictor) as Arc<dyn BatchPredictor>,
        CoalescerConfig {
            shards: 1,
            max_batch: 16,
            queue_cap: 256,
            ..CoalescerConfig::default()
        },
    ));
    submit_concurrently(&coalescer, 32, 3);
    let sizes = predictor.batch_sizes.lock().unwrap().clone();
    assert_eq!(
        sizes.iter().sum::<usize>(),
        32,
        "every request predicted exactly once"
    );
    assert!(
        sizes.iter().any(|&s| s > 1),
        "no batch exceeded size 1 under concurrent load: {sizes:?}"
    );
    assert!(
        sizes.iter().all(|&s| s <= 16),
        "a batch exceeded max_batch: {sizes:?}"
    );
}

#[test]
fn batched_output_equals_sequential_predict_bitwise() {
    // Real model end to end: train a small LR, serve it through the
    // coalescer under concurrency, and compare every response to the
    // sequential forecast of the same window.
    let profile = profile_by_name("ILI").expect("profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    let artifact = fit("LR", &train, 16, 8, norm, String::new(), None).expect("fit");
    let dim = artifact.dim;
    let reference = ServableModel::from_artifact(artifact.clone()).expect("servable");
    let served = Arc::new(ServableModel::from_artifact(artifact).expect("servable"));

    let coalescer = Arc::new(Coalescer::start(
        served as Arc<dyn BatchPredictor>,
        CoalescerConfig::default(),
    ));
    for (window, forecast) in submit_concurrently(&coalescer, 40, 16 * dim) {
        let sequential = reference.forecast(&window).expect("sequential forecast");
        assert_eq!(forecast.len(), sequential.len());
        let same = forecast
            .iter()
            .zip(&sequential)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            same,
            "batched forecast differs bitwise from sequential predict"
        );
    }
}

#[test]
fn full_queue_sheds_instead_of_growing() {
    let predictor = Arc::new(EchoPredictor::new(2, Duration::from_millis(50)));
    let coalescer = Coalescer::start(
        Arc::clone(&predictor) as Arc<dyn BatchPredictor>,
        CoalescerConfig {
            shards: 1,
            max_batch: 1,
            queue_cap: 2,
            ..CoalescerConfig::default()
        },
    );
    // Occupy the batcher, then fill the bounded queue.
    let mut held = Vec::new();
    held.push(coalescer.submit(vec![0.0, 0.0]).expect("first submit"));
    std::thread::sleep(Duration::from_millis(10)); // batcher now busy
    let mut shed = 0;
    for i in 0..8 {
        match coalescer.submit(vec![i as f64, 0.0]) {
            Ok(rx) => held.push(rx),
            Err(SubmitError::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    assert!(shed > 0, "no request was shed past a full queue");
    assert!(coalescer.backlog() <= 2, "queue exceeded its bound");
    // Accepted requests still finish.
    for rx in held {
        rx.recv().expect("reply").expect("predict");
    }
}

#[test]
fn wrong_window_length_is_rejected_at_submit() {
    let predictor = Arc::new(EchoPredictor::new(4, Duration::ZERO));
    let coalescer = Coalescer::start(
        predictor as Arc<dyn BatchPredictor>,
        CoalescerConfig::default(),
    );
    match coalescer.submit(vec![1.0; 3]) {
        Err(SubmitError::BadWindow {
            got: 3,
            expected: 4,
        }) => {}
        other => panic!("expected BadWindow, got {other:?}"),
    }
}

#[test]
fn shutdown_drains_accepted_requests() {
    let predictor = Arc::new(EchoPredictor::new(2, Duration::from_millis(15)));
    let coalescer = Coalescer::start(
        Arc::clone(&predictor) as Arc<dyn BatchPredictor>,
        CoalescerConfig {
            shards: 1,
            max_batch: 2,
            queue_cap: 64,
            ..CoalescerConfig::default()
        },
    );
    let answered = Arc::new(AtomicUsize::new(0));
    let receivers: Vec<_> = (0..10)
        .map(|i| coalescer.submit(vec![i as f64, 1.0]).expect("submit"))
        .collect();
    let waiters: Vec<_> = receivers
        .into_iter()
        .map(|rx| {
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                rx.recv().expect("drained reply").expect("predict");
                answered.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    coalescer.shutdown();
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(
        answered.load(Ordering::SeqCst),
        10,
        "shutdown dropped accepted requests instead of draining"
    );
}

//! Integration tests over real TCP: end-to-end bit-identity of served
//! forecasts, health/metrics endpoints, structured 4xx handling,
//! deterministic 429 shedding, and graceful shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tfb_artifact::{fit, ServableModel};
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_datagen::profiles::{profile_by_name, Scale};
use tfb_json::JsonValue;
use tfb_math::matrix::Matrix;
use tfb_serve::{
    serve, serve_with, BatchPredictor, CoalescerConfig, ModelInfo, ServerConfig, ServerHandle,
};

fn lr_model(lookback: usize, horizon: usize) -> (ServableModel, ServableModel) {
    let profile = profile_by_name("ILI").expect("profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    let artifact = fit("LR", &train, lookback, horizon, norm, String::new(), None).expect("fit");
    (
        ServableModel::from_artifact(artifact.clone()).expect("servable"),
        ServableModel::from_artifact(artifact).expect("servable"),
    )
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    read_reply(&mut BufReader::new(stream))
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> HttpReply {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            let (k, v) = (k.trim().to_string(), v.trim().to_string());
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("content-length");
            }
            headers.push((k, v));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    HttpReply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

fn window_json(window: &[f64]) -> String {
    let doc = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )]);
    doc.compact()
}

#[test]
fn served_forecast_is_bit_identical_to_offline_predict() {
    let (served, reference) = lr_model(16, 8);
    let dim = reference.dim();
    let handle = serve(served, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let window: Vec<f64> = (0..16 * dim).map(|i| (i as f64) * 0.37 - 3.0).collect();
    let reply = request(addr, "POST", "/forecast", &window_json(&window));
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let parsed = JsonValue::parse(&reply.body).expect("response JSON");
    assert_eq!(parsed.get("method").and_then(|v| v.as_str()), Some("LR"));
    let got: Vec<f64> = parsed
        .get("forecast")
        .and_then(|v| v.as_array())
        .expect("forecast array")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect();
    let expected = reference.forecast(&window).expect("offline forecast");
    assert_eq!(got.len(), expected.len());
    let same = got
        .iter()
        .zip(&expected)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "served forecast differs bitwise from offline predict");
    handle.shutdown();
}

#[test]
fn healthz_and_metrics_respond() {
    let (served, _) = lr_model(16, 4);
    let handle = serve(served, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let parsed = JsonValue::parse(&health.body).expect("healthz JSON");
    assert_eq!(parsed.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(parsed.get("method").and_then(|v| v.as_str()), Some("LR"));
    assert_eq!(parsed.get("lookback").and_then(|v| v.as_f64()), Some(16.0));

    // `/metrics` is OpenMetrics text: correct content-type, validator
    // clean, `# EOF`-terminated — also with obs recording disarmed,
    // where the exposition is empty but still well formed.
    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .header("content-type")
            .is_some_and(|v| v.contains("openmetrics-text")),
        "missing OpenMetrics content-type: {:?}",
        metrics.headers
    );
    assert!(metrics.body.ends_with("# EOF\n"), "{}", metrics.body);
    tfb_obs::openmetrics::validate(&metrics.body).expect("valid OpenMetrics");

    // `/metrics.json` keeps the raw JSON snapshot.
    let metrics_json = request(addr, "GET", "/metrics.json", "");
    assert_eq!(metrics_json.status, 200);
    let parsed = JsonValue::parse(&metrics_json.body).expect("metrics JSON");
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("histograms").is_some());
    handle.shutdown();
}

#[test]
fn malformed_requests_get_structured_errors() {
    let (served, _) = lr_model(16, 4);
    let dim = {
        let (_, r) = lr_model(16, 4);
        r.dim()
    };
    let handle = serve(served, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let bad_json = request(addr, "POST", "/forecast", "this is not json");
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.body.contains("error"), "{}", bad_json.body);

    let missing = request(addr, "POST", "/forecast", "{\"not_window\": []}");
    assert_eq!(missing.status, 400);

    let short = request(addr, "POST", "/forecast", &window_json(&[1.0; 3]));
    assert_eq!(short.status, 400);
    assert!(short.body.contains("expects"), "{}", short.body);
    let _ = dim;

    let wrong_method = request(addr, "GET", "/forecast", "");
    assert_eq!(wrong_method.status, 405);

    let unknown = request(addr, "GET", "/nope", "");
    assert_eq!(unknown.status, 404);
    handle.shutdown();
}

/// A predictor slow enough that a small queue visibly fills.
struct SlowPredictor;

impl BatchPredictor for SlowPredictor {
    fn input_len(&self) -> usize {
        2
    }

    fn output_len(&self) -> usize {
        1
    }

    fn predict_batch(&self, windows: &Matrix) -> Result<Matrix, String> {
        std::thread::sleep(Duration::from_millis(40));
        let mut out = Matrix::zeros(windows.rows(), 1);
        for r in 0..windows.rows() {
            out.data_mut()[r] = windows.row(r)[0];
        }
        Ok(out)
    }
}

fn slow_server(queue_cap: usize) -> ServerHandle {
    serve_with(
        Arc::new(SlowPredictor),
        ModelInfo {
            method: "Slow".to_string(),
            lookback: 2,
            horizon: 1,
            dim: 1,
        },
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: CoalescerConfig {
                shards: 1,
                max_batch: 1,
                queue_cap,
                ..CoalescerConfig::default()
            },
        },
    )
    .expect("serve_with")
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let handle = slow_server(1);
    let addr = handle.addr();
    let replies: Vec<HttpReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    request(addr, "POST", "/forecast", &window_json(&[i as f64, 0.0]))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = replies.iter().filter(|r| r.status == 200).count();
    let shed: Vec<&HttpReply> = replies.iter().filter(|r| r.status == 429).collect();
    assert!(ok >= 1, "no request succeeded under overload");
    assert!(!shed.is_empty(), "overload never produced a 429");
    for r in &shed {
        assert!(
            r.header("retry-after").is_some(),
            "429 without a Retry-After header"
        );
        assert!(r.body.contains("error"));
    }
    assert_eq!(
        replies.len(),
        ok + shed.len() + replies.iter().filter(|r| r.status == 503).count(),
        "unexpected status in {:?}",
        replies.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    // The server is still healthy after shedding.
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (served, _) = lr_model(16, 4);
    let handle = serve(served, ServerConfig::default()).expect("serve");
    let addr = handle.addr();

    let reply = request(addr, "POST", "/shutdown", "");
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("draining"), "{}", reply.body);
    assert!(handle.shutdown_requested());
    // Joins the accept loop, every connection and the batcher — must
    // not hang.
    handle.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let (served, reference) = lr_model(16, 4);
    let dim = reference.dim();
    let handle = serve(served, ServerConfig::default()).expect("serve");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3 {
        let window: Vec<f64> = (0..16 * dim).map(|j| (i * j) as f64 * 0.1).collect();
        let body = window_json(&window);
        let head = format!(
            "POST /forecast HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let reply = read_reply(&mut reader);
        assert_eq!(reply.status, 200, "request {i} on shared connection failed");
        assert_eq!(reply.header("connection"), Some("keep-alive"));
    }
    handle.shutdown();
}

//! Versioned, deterministic binary model artifacts (`tfb-artifact/v1`).
//!
//! A benchmark run trains a forecaster and throws it away; this crate
//! makes the fitted model a first-class, persistable object so it can be
//! served long after the training process exits. An artifact captures
//! everything inference needs: the method id, the look-back/horizon/dim
//! geometry, the fitted normalization statistics, and the parameter
//! tensors — encoded little-endian with length prefixes and an FNV-1a
//! integrity trailer (see [`format`]), with no external dependencies.
//!
//! Three parameter payloads cover the supported methods:
//!
//! * **naive** — no parameters; predict repeats the window's last row.
//! * **linear** — the ridge-regression coefficient matrix (`LR`).
//! * **deep** — the architecture label plus every parameter tensor of a
//!   [`DeepModel`] (`NLinear`, `DLinear`, `PatchTST`, and the rest of
//!   the tfb-nn families). Architecture construction is deterministic in
//!   `(kind, lookback, horizon)`, so tensors reload into an identical
//!   registration sequence.
//!
//! [`ServableModel`] is the inference view: it owns the decoded model
//! plus the normalizer and exposes `forecast`/`forecast_batch` over
//! **raw** (unnormalized) windows — normalize, predict, invert, exactly
//! the element-wise operations the offline evaluation pipeline applies,
//! so a served forecast is bit-identical to the offline one.

use std::path::Path;

use tfb_data::{MultiSeries, NormStats, Normalization, Normalizer};
use tfb_math::matrix::Matrix;
use tfb_models::{LinearRegressionForecaster, ModelError, WindowForecaster};
use tfb_nn::{DeepModel, DeepModelKind, TrainConfig};

pub mod format;

pub use format::{MAGIC, SCHEMA_VERSION};

/// Everything that can go wrong saving, loading or serving an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The bytes are not a valid `tfb-artifact/v1` document.
    Format(String),
    /// The method id is not one this build can train or serve.
    Unsupported(String),
    /// The underlying model failed (training or inference).
    Model(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "io error: {e}"),
            ArtifactError::Format(m) => write!(f, "invalid artifact: {m}"),
            ArtifactError::Unsupported(m) => write!(f, "unsupported method: {m}"),
            ArtifactError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<ModelError> for ArtifactError {
    fn from(e: ModelError) -> Self {
        ArtifactError::Model(e.to_string())
    }
}

/// Payload tag for the naive (parameter-free) model.
const TAG_NAIVE: u32 = 0;
/// Payload tag for the linear-regression coefficient matrix.
const TAG_LINEAR: u32 = 1;
/// Payload tag for a deep model's tensor list.
const TAG_DEEP: u32 = 2;

/// The parameter payload of one artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelParams {
    /// No parameters: predict repeats the window's last row.
    Naive,
    /// Ridge-regression coefficients (`(lookback + 1) x horizon`,
    /// intercept row first).
    Linear {
        /// Ridge penalty the model was fitted with.
        lambda: f64,
        /// Training sample budget the model was fitted with.
        max_samples: usize,
        /// Fitted coefficient matrix.
        coefs: Matrix,
    },
    /// A deep model's parameter tensors, in registration order.
    Deep {
        /// Architecture label ([`DeepModelKind::label`]).
        kind: String,
        /// `(values, rows, cols)` per tensor.
        tensors: Vec<(Vec<f64>, usize, usize)>,
    },
}

/// One decoded (or to-be-encoded) `tfb-artifact/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Method id (`Naive`, `LR`, or a deep label such as `PatchTST`).
    pub method: String,
    /// Provenance hash of the training configuration.
    pub config_hash: String,
    /// Look-back window length the model consumes.
    pub lookback: usize,
    /// Forecast horizon the model emits.
    pub horizon: usize,
    /// Channel count the model was trained on.
    pub dim: usize,
    /// Fitted normalization (scheme + per-channel statistics).
    pub norm: Normalizer,
    /// Parameter payload.
    pub params: ModelParams,
}

impl ModelArtifact {
    /// Encodes the artifact to its `tfb-artifact/v1` byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = format::Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(SCHEMA_VERSION);
        w.put_string(&self.method);
        w.put_string(&self.config_hash);
        w.put_string(self.norm.scheme.name());
        w.put_u64(self.lookback as u64);
        w.put_u64(self.horizon as u64);
        w.put_u64(self.dim as u64);
        w.put_vec(&self.norm.stats.offset);
        w.put_vec(&self.norm.stats.scale);
        match &self.params {
            ModelParams::Naive => w.put_u32(TAG_NAIVE),
            ModelParams::Linear {
                lambda,
                max_samples,
                coefs,
            } => {
                w.put_u32(TAG_LINEAR);
                w.put_f64(*lambda);
                w.put_u64(*max_samples as u64);
                w.put_tensor(coefs.data(), coefs.rows(), coefs.cols());
            }
            ModelParams::Deep { kind, tensors } => {
                w.put_u32(TAG_DEEP);
                w.put_string(kind);
                w.put_u64(tensors.len() as u64);
                for (data, rows, cols) in tensors {
                    w.put_tensor(data, *rows, *cols);
                }
            }
        }
        w.finish()
    }

    /// Decodes an artifact, verifying magic, schema version, checksum
    /// and every structural invariant. Corrupt input is a structured
    /// [`ArtifactError::Format`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelArtifact, ArtifactError> {
        if bytes.len() < 4 || bytes[..4] != MAGIC {
            return Err(ArtifactError::Format(
                "not a tfb artifact (bad magic)".to_string(),
            ));
        }
        let mut r = format::Reader::checked(bytes).map_err(ArtifactError::Format)?;
        r.get_bytes(4, "magic").map_err(ArtifactError::Format)?;
        let version = r.get_u32("schema version").map_err(ArtifactError::Format)?;
        if version != SCHEMA_VERSION {
            return Err(ArtifactError::Format(format!(
                "unsupported schema version {version} (this build reads {SCHEMA_VERSION})"
            )));
        }
        let fmt = ArtifactError::Format;
        let method = r.get_string("method id").map_err(fmt)?;
        let config_hash = r.get_string("config hash").map_err(fmt)?;
        let scheme_name = r.get_string("norm scheme").map_err(fmt)?;
        let scheme = Normalization::parse_name(&scheme_name).ok_or_else(|| {
            ArtifactError::Format(format!("unknown normalization scheme {scheme_name:?}"))
        })?;
        let lookback = r.get_u64("lookback").map_err(fmt)? as usize;
        let horizon = r.get_u64("horizon").map_err(fmt)? as usize;
        let dim = r.get_u64("dim").map_err(fmt)? as usize;
        if lookback == 0 || horizon == 0 || dim == 0 {
            return Err(ArtifactError::Format(format!(
                "degenerate geometry: lookback {lookback}, horizon {horizon}, dim {dim}"
            )));
        }
        let offset = r.get_vec("norm offset").map_err(fmt)?;
        let scale = r.get_vec("norm scale").map_err(fmt)?;
        if offset.len() != dim || scale.len() != dim {
            return Err(ArtifactError::Format(format!(
                "normalization stats carry {}/{} channels, artifact dim is {dim}",
                offset.len(),
                scale.len()
            )));
        }
        let tag = r.get_u32("payload tag").map_err(fmt)?;
        let params = match tag {
            TAG_NAIVE => ModelParams::Naive,
            TAG_LINEAR => {
                let lambda = r.get_f64("lambda").map_err(fmt)?;
                let max_samples = r.get_u64("max samples").map_err(fmt)? as usize;
                let (data, rows, cols) = r.get_tensor("coefficients").map_err(fmt)?;
                let coefs = Matrix::from_vec(rows, cols, data)
                    .map_err(|e| ArtifactError::Format(e.to_string()))?;
                ModelParams::Linear {
                    lambda,
                    max_samples,
                    coefs,
                }
            }
            TAG_DEEP => {
                let kind = r.get_string("deep kind").map_err(fmt)?;
                let n = r.get_u64("tensor count").map_err(fmt)? as usize;
                if n > 4096 {
                    return Err(ArtifactError::Format(format!(
                        "tensor count {n} exceeds limit"
                    )));
                }
                let mut tensors = Vec::with_capacity(n);
                for i in 0..n {
                    tensors.push(r.get_tensor(&format!("tensor {i}")).map_err(fmt)?);
                }
                ModelParams::Deep { kind, tensors }
            }
            other => {
                return Err(ArtifactError::Format(format!(
                    "unknown payload tag {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(ArtifactError::Format(format!(
                "{} trailing bytes after payload",
                r.remaining()
            )));
        }
        Ok(ModelArtifact {
            method,
            config_hash,
            lookback,
            horizon,
            dim,
            norm: Normalizer {
                scheme,
                stats: NormStats { offset, scale },
            },
            params,
        })
    }

    /// Writes the encoded artifact to `path`, creating parent
    /// directories.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes an artifact from `path`.
    pub fn load(path: &Path) -> Result<ModelArtifact, ArtifactError> {
        let bytes = std::fs::read(path)?;
        ModelArtifact::from_bytes(&bytes)
    }
}

/// Method ids [`fit`] can train and [`ServableModel`] can serve.
pub fn supported_methods() -> Vec<&'static str> {
    let mut out = vec!["Naive", "LR"];
    out.extend(DeepModelKind::PAPER_BASELINES.iter().map(|k| k.label()));
    out.push(DeepModelKind::Mlp.label());
    out
}

/// Trains `method` on the **normalized** training segment and packages
/// the fitted parameters as an artifact. The caller fits the normalizer
/// on the raw training split and normalizes before calling — the same
/// sequence the offline evaluation pipeline applies — and passes that
/// normalizer in so inference can reproduce it.
///
/// `deep_config` overrides the training budget for deep methods (the
/// CLI's fast mode shrinks epochs); `Naive` and `LR` ignore it.
pub fn fit(
    method: &str,
    train: &MultiSeries,
    lookback: usize,
    horizon: usize,
    norm: Normalizer,
    config_hash: String,
    deep_config: Option<TrainConfig>,
) -> Result<ModelArtifact, ArtifactError> {
    if lookback == 0 || horizon == 0 {
        return Err(ArtifactError::Model(
            "lookback and horizon must be positive".to_string(),
        ));
    }
    let dim = train.dim();
    let params = match method {
        "Naive" => ModelParams::Naive,
        "LR" => {
            let mut model = LinearRegressionForecaster::new(lookback, horizon);
            model.train(train)?;
            let coefs = model
                .coefficients()
                .expect("trained LR has coefficients")
                .clone();
            ModelParams::Linear {
                lambda: model.lambda,
                max_samples: model.max_samples,
                coefs,
            }
        }
        other => {
            let kind = DeepModelKind::from_label(other).ok_or_else(|| {
                ArtifactError::Unsupported(format!(
                    "{other:?} (supported: {})",
                    supported_methods().join(", ")
                ))
            })?;
            let mut model = DeepModel::new(kind, lookback, horizon, dim);
            if let Some(cfg) = deep_config {
                model.config = cfg;
            }
            model.train(train)?;
            ModelParams::Deep {
                kind: kind.label().to_string(),
                tensors: model.export_tensors(),
            }
        }
    };
    Ok(ModelArtifact {
        method: method.to_string(),
        config_hash,
        lookback,
        horizon,
        dim,
        norm,
        params,
    })
}

/// The parameter-free naive forecaster in window form: predict repeats
/// the window's last row `horizon` times (the stat pipeline's `Naive`
/// applied to a history ending at the window's last step).
#[derive(Debug, Clone)]
struct NaiveWindow {
    lookback: usize,
    horizon: usize,
}

impl WindowForecaster for NaiveWindow {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn lookback(&self) -> usize {
        self.lookback
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn train(&mut self, _train: &MultiSeries) -> tfb_models::Result<()> {
        Ok(())
    }

    fn predict(&self, window: &[f64], dim: usize) -> tfb_models::Result<Vec<f64>> {
        if dim == 0 || window.len() != self.lookback * dim {
            return Err(ModelError::InvalidParameter("window length"));
        }
        let last = &window[(self.lookback - 1) * dim..];
        let mut out = Vec::with_capacity(self.horizon * dim);
        for _ in 0..self.horizon {
            out.extend_from_slice(last);
        }
        Ok(out)
    }
}

/// A loaded artifact ready to answer forecast requests: the decoded
/// model plus its normalizer, exposed over **raw** windows.
///
/// `forecast` applies normalize → `predict` → invert with exactly the
/// element-wise arithmetic the offline pipeline uses, so a served
/// forecast is bit-identical to offline inference on the same window.
/// `forecast_batch` routes through the model's `predict_batch`, whose
/// contract already guarantees bit-identity with per-row `predict` —
/// the coalescing server relies on both properties.
pub struct ServableModel {
    method: String,
    config_hash: String,
    lookback: usize,
    horizon: usize,
    dim: usize,
    norm: Normalizer,
    model: Box<dyn WindowForecaster>,
}

impl ServableModel {
    /// Instantiates the concrete model an artifact describes. Shape or
    /// label mismatches (a corrupt or mislabeled artifact) are
    /// structured errors.
    pub fn from_artifact(artifact: ModelArtifact) -> Result<ServableModel, ArtifactError> {
        let ModelArtifact {
            method,
            config_hash,
            lookback,
            horizon,
            dim,
            norm,
            params,
        } = artifact;
        let model: Box<dyn WindowForecaster> = match params {
            ModelParams::Naive => Box::new(NaiveWindow { lookback, horizon }),
            ModelParams::Linear {
                lambda,
                max_samples,
                coefs,
            } => Box::new(
                LinearRegressionForecaster::from_parts(
                    lookback,
                    horizon,
                    lambda,
                    max_samples,
                    coefs,
                )
                .map_err(ArtifactError::Format)?,
            ),
            ModelParams::Deep { kind, tensors } => {
                let kind = DeepModelKind::from_label(&kind)
                    .ok_or_else(|| ArtifactError::Unsupported(format!("{kind:?}")))?;
                Box::new(
                    DeepModel::from_tensors(kind, lookback, horizon, dim, &tensors)
                        .map_err(ArtifactError::Format)?,
                )
            }
        };
        Ok(ServableModel {
            method,
            config_hash,
            lookback,
            horizon,
            dim,
            norm,
            model,
        })
    }

    /// Loads and instantiates an artifact from disk in one step.
    pub fn load(path: &Path) -> Result<ServableModel, ArtifactError> {
        ServableModel::from_artifact(ModelArtifact::load(path)?)
    }

    /// Method id.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Training-configuration hash carried for provenance.
    pub fn config_hash(&self) -> &str {
        &self.config_hash
    }

    /// Look-back window length a request must carry (`lookback * dim`
    /// values, time-major).
    pub fn lookback(&self) -> usize {
        self.lookback
    }

    /// Forecast horizon a response carries (`horizon * dim` values).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Channel count.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn normalize_window(&self, raw: &[f64]) -> Vec<f64> {
        let (offset, scale) = (&self.norm.stats.offset, &self.norm.stats.scale);
        raw.iter()
            .enumerate()
            .map(|(i, &v)| (v - offset[i % self.dim]) / scale[i % self.dim])
            .collect()
    }

    /// Forecasts `horizon * dim` raw values from one raw time-major
    /// window of `lookback * dim` values.
    pub fn forecast(&self, raw_window: &[f64]) -> Result<Vec<f64>, ArtifactError> {
        if raw_window.len() != self.lookback * self.dim {
            return Err(ArtifactError::Model(format!(
                "window carries {} values, model expects lookback {} x dim {} = {}",
                raw_window.len(),
                self.lookback,
                self.dim,
                self.lookback * self.dim
            )));
        }
        let normed = self.normalize_window(raw_window);
        let mut out = self.model.predict(&normed, self.dim)?;
        self.norm
            .invert_block(&mut out, self.dim)
            .map_err(|e| ArtifactError::Model(e.to_string()))?;
        Ok(out)
    }

    /// Forecasts every row of `raw_windows` through one `predict_batch`
    /// call. Row `r` of the result is bit-identical to
    /// `forecast(raw_windows.row(r))`.
    pub fn forecast_batch(&self, raw_windows: &Matrix) -> Result<Matrix, ArtifactError> {
        if raw_windows.cols() != self.lookback * self.dim {
            return Err(ArtifactError::Model(format!(
                "windows carry {} values each, model expects {}",
                raw_windows.cols(),
                self.lookback * self.dim
            )));
        }
        let mut normed = Matrix::zeros(raw_windows.rows(), raw_windows.cols());
        for r in 0..raw_windows.rows() {
            let row = self.normalize_window(raw_windows.row(r));
            let w = raw_windows.cols();
            normed.data_mut()[r * w..(r + 1) * w].copy_from_slice(&row);
        }
        let mut out = self.model.predict_batch(&normed, self.dim)?;
        self.norm
            .invert_block(out.data_mut(), self.dim)
            .map_err(|e| ArtifactError::Model(e.to_string()))?;
        Ok(out)
    }
}

//! The `tfb-artifact/v1` byte codec: little-endian, length-prefixed,
//! no external dependencies.
//!
//! Layout (all integers little-endian):
//!
//! | field            | encoding                                   |
//! |------------------|--------------------------------------------|
//! | magic            | 4 bytes `TFBA`                             |
//! | schema version   | `u32` (currently 1)                        |
//! | method id        | string: `u64` length + UTF-8 bytes         |
//! | config hash      | string                                     |
//! | norm scheme      | string (`ZScore` / `MinMax` / `None`)      |
//! | lookback         | `u64`                                      |
//! | horizon          | `u64`                                      |
//! | dim              | `u64`                                      |
//! | norm offset      | vector: `u64` length + `f64` values        |
//! | norm scale       | vector                                     |
//! | payload tag      | `u32` (0 = naive, 1 = linear, 2 = deep)    |
//! | payload          | tag-specific (see `lib.rs`)                |
//! | checksum         | `u64` FNV-1a over every preceding byte     |
//!
//! Tensors encode as `rows: u64, cols: u64, rows*cols f64 values`.
//! Every read is bounds-checked and length-sanity-checked, so a
//! truncated or corrupt file surfaces as a structured decode error —
//! never a panic or an unbounded allocation.

/// File magic: the first four bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"TFBA";

/// Current schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Human-readable schema name (`tfb-artifact/v1` together with
/// [`SCHEMA_VERSION`]).
pub const SCHEMA_NAME: &str = "tfb-artifact";

/// Upper bound on an encoded string length (method ids, hashes, labels).
const MAX_STRING_LEN: u64 = 4096;

/// Upper bound on a single tensor's element count (~2 GiB of f64).
const MAX_TENSOR_LEN: u64 = 1 << 28;

/// 64-bit FNV-1a over a byte slice — the artifact's integrity trailer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only encoder for the artifact body.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` vector.
    pub fn put_vec(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a shaped tensor (`rows`, `cols`, `rows*cols` values).
    pub fn put_tensor(&mut self, data: &[f64], rows: usize, cols: usize) {
        debug_assert_eq!(data.len(), rows * cols);
        self.put_u64(rows as u64);
        self.put_u64(cols as u64);
        for &x in data {
            self.put_f64(x);
        }
    }

    /// Appends the FNV-1a trailer and returns the finished byte buffer.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.put_u64(sum);
        self.buf
    }
}

/// Bounds-checked cursor over an artifact's bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Verifies the FNV-1a trailer and returns a cursor over the body
    /// (trailer excluded).
    pub fn checked(bytes: &'a [u8]) -> Result<Reader<'a>, String> {
        if bytes.len() < 8 {
            return Err(format!("artifact too short: {} bytes", bytes.len()));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ));
        }
        Ok(Reader {
            bytes: body,
            pos: 0,
        })
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated artifact: {what} needs {n} bytes, {} left",
                self.remaining()
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads raw bytes.
    pub fn get_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        self.take(n, what)
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self, what: &str) -> Result<String, String> {
        let len = self.get_u64(what)?;
        if len > MAX_STRING_LEN {
            return Err(format!("{what}: string length {len} exceeds limit"));
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_vec(&mut self, what: &str) -> Result<Vec<f64>, String> {
        let len = self.get_u64(what)?;
        if len > MAX_TENSOR_LEN {
            return Err(format!("{what}: vector length {len} exceeds limit"));
        }
        let n = len as usize;
        if self.remaining() < n * 8 {
            return Err(format!(
                "truncated artifact: {what} declares {n} values, {} bytes left",
                self.remaining()
            ));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64(what)?);
        }
        Ok(out)
    }

    /// Reads a shaped tensor.
    pub fn get_tensor(&mut self, what: &str) -> Result<(Vec<f64>, usize, usize), String> {
        let rows = self.get_u64(what)?;
        let cols = self.get_u64(what)?;
        let len = rows.checked_mul(cols).filter(|&l| l <= MAX_TENSOR_LEN);
        let Some(len) = len else {
            return Err(format!("{what}: tensor shape {rows}x{cols} exceeds limit"));
        };
        let n = len as usize;
        if self.remaining() < n * 8 {
            return Err(format!(
                "truncated artifact: {what} declares {rows}x{cols} tensor, {} bytes left",
                self.remaining()
            ));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.get_f64(what)?);
        }
        Ok((data, rows as usize, cols as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(SCHEMA_VERSION);
        w.put_string("LR");
        w.put_u64(42);
        w.put_f64(-0.5);
        w.put_vec(&[1.0, 2.5]);
        w.put_tensor(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let bytes = w.finish();

        let mut r = Reader::checked(&bytes).unwrap();
        assert_eq!(r.get_bytes(4, "magic").unwrap(), MAGIC);
        assert_eq!(r.get_u32("version").unwrap(), SCHEMA_VERSION);
        assert_eq!(r.get_string("method").unwrap(), "LR");
        assert_eq!(r.get_u64("answer").unwrap(), 42);
        assert_eq!(r.get_f64("x").unwrap(), -0.5);
        assert_eq!(r.get_vec("v").unwrap(), vec![1.0, 2.5]);
        let (data, rows, cols) = r.get_tensor("t").unwrap();
        assert_eq!((rows, cols), (2, 3));
        assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn checksum_rejects_flipped_bit() {
        let mut w = Writer::new();
        w.put_string("hello");
        let mut bytes = w.finish();
        bytes[3] ^= 0x40;
        let err = Reader::checked(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_reads_are_errors_not_panics() {
        let mut w = Writer::new();
        w.put_vec(&[1.0, 2.0, 3.0]);
        let bytes = w.finish();
        // Drop the trailer and a value, then re-checksum so only the
        // structural truncation (not the trailer) trips.
        let body = &bytes[..bytes.len() - 16];
        let mut forged = body.to_vec();
        forged.extend_from_slice(&fnv1a64(body).to_le_bytes());
        let mut r = Reader::checked(&forged).unwrap();
        let err = r.get_vec("v").unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn huge_declared_length_is_an_error() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = Reader::checked(&bytes).unwrap();
        assert!(r.get_vec("v").is_err());
        let mut r2 = Reader::checked(&bytes).unwrap();
        assert!(r2.get_string("s").is_err());
    }
}

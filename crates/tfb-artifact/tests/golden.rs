//! The committed golden fixture: a checked-in `.tfba` file that makes
//! any drift in the on-disk format (or in the deterministic training
//! path that produces it) fail loudly.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! TFB_REGEN_GOLDEN=1 cargo test -p tfb-artifact --test golden
//! ```

use std::path::PathBuf;

use tfb_artifact::{fit, ModelArtifact, ServableModel, MAGIC, SCHEMA_VERSION};
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_datagen::profiles::{profile_by_name, Scale};

const GOLDEN_LOOKBACK: usize = 16;
const GOLDEN_HORIZON: usize = 4;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("golden_lr.tfba")
}

/// The deterministic training run the fixture was produced by.
fn golden_artifact() -> ModelArtifact {
    let profile = profile_by_name("ILI").expect("ILI profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    fit(
        "LR",
        &train,
        GOLDEN_LOOKBACK,
        GOLDEN_HORIZON,
        norm,
        "golden".to_string(),
        None,
    )
    .expect("fit golden LR")
}

#[test]
fn golden_fixture_matches_format_and_training() {
    let path = fixture_path();
    if std::env::var("TFB_REGEN_GOLDEN").is_ok() {
        golden_artifact().save(&path).expect("write fixture");
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with TFB_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(bytes[..4], MAGIC, "fixture magic drifted");

    // Decoding succeeds and the header survives exactly.
    let decoded = ModelArtifact::from_bytes(&bytes).expect("decode golden fixture");
    assert_eq!(decoded.method, "LR");
    assert_eq!(decoded.config_hash, "golden");
    assert_eq!(decoded.lookback, GOLDEN_LOOKBACK);
    assert_eq!(decoded.horizon, GOLDEN_HORIZON);
    assert_eq!(decoded.norm.scheme, Normalization::ZScore);
    assert_eq!(decoded.norm.stats.offset.len(), decoded.dim);

    // Re-encoding is byte-identical: the encoder and the committed
    // format agree down to the checksum.
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "re-encoding the golden fixture changed its bytes — the writer drifted \
         from tfb-artifact/v{SCHEMA_VERSION}"
    );

    // The fixture still loads into a working model.
    let model = ServableModel::from_artifact(decoded.clone()).expect("servable");
    let window = vec![1.0; GOLDEN_LOOKBACK * decoded.dim];
    let forecast = model.forecast(&window).expect("forecast");
    assert_eq!(forecast.len(), GOLDEN_HORIZON * decoded.dim);
    assert!(forecast.iter().all(|v| v.is_finite()));
}

#[test]
fn deterministic_training_reproduces_the_golden_bytes() {
    let path = fixture_path();
    let Ok(bytes) = std::fs::read(&path) else {
        // The other test reports the missing fixture with instructions.
        return;
    };
    let retrained = golden_artifact().to_bytes();
    assert_eq!(
        retrained, bytes,
        "retraining the golden model produced different bytes — the training \
         path is no longer deterministic (or drifted); regenerate the fixture \
         with TFB_REGEN_GOLDEN=1 if the change is intentional"
    );
}

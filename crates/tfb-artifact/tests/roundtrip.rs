//! Round-trip guarantees of `tfb-artifact/v1`: save → load → predict is
//! bit-identical to the in-memory model, for every supported payload
//! kind, on randomized windows.

use tfb_artifact::{fit, ArtifactError, ModelArtifact, ServableModel};
use tfb_data::{ChronoSplit, Normalization, Normalizer};
use tfb_datagen::profiles::{profile_by_name, Scale};
use tfb_math::matrix::Matrix;
use tfb_nn::TrainConfig;

/// Tiny deep-training budget so the deep round-trips stay fast.
fn tiny_config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        max_samples: 120,
        ..TrainConfig::default()
    }
}

/// Trains `method` the way the offline pipeline would: fit the
/// normalizer on the raw training split, normalize, train on the
/// pre-validation rows.
fn train_artifact(method: &str, lookback: usize, horizon: usize) -> ModelArtifact {
    let profile = profile_by_name("ILI").expect("ILI profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    fit(
        method,
        &train,
        lookback,
        horizon,
        norm,
        "test-hash".to_string(),
        Some(tiny_config()),
    )
    .unwrap_or_else(|e| panic!("fit {method}: {e}"))
}

/// Deterministic raw windows in a realistic value range.
fn random_windows(n: usize, width: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..width).map(|_| next() * 40.0 - 20.0).collect())
        .collect()
}

fn assert_bit_identical_round_trip(method: &str) {
    let (lookback, horizon) = (24, 8);
    let artifact = train_artifact(method, lookback, horizon);
    let bytes = artifact.to_bytes();
    let reloaded = ModelArtifact::from_bytes(&bytes).expect("decode");
    assert_eq!(artifact, reloaded, "{method}: decoded artifact differs");

    let dim = artifact.dim;
    let original = ServableModel::from_artifact(artifact).expect("servable (original)");
    let restored = ServableModel::from_artifact(reloaded).expect("servable (reloaded)");
    for (i, window) in random_windows(16, lookback * dim, 0xA5F00D + method.len() as u64)
        .iter()
        .enumerate()
    {
        let a = original.forecast(window).expect("forecast original");
        let b = restored.forecast(window).expect("forecast restored");
        assert_eq!(a.len(), horizon * dim);
        let same = a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{method}: window {i} forecast not bit-identical");
    }
}

#[test]
fn naive_round_trip_is_bit_identical() {
    assert_bit_identical_round_trip("Naive");
}

#[test]
fn linear_regression_round_trip_is_bit_identical() {
    assert_bit_identical_round_trip("LR");
}

#[test]
fn nlinear_round_trip_is_bit_identical() {
    assert_bit_identical_round_trip("NLinear");
}

#[test]
fn dlinear_round_trip_is_bit_identical() {
    assert_bit_identical_round_trip("DLinear");
}

#[test]
fn patchtst_round_trip_is_bit_identical() {
    assert_bit_identical_round_trip("PatchTST");
}

#[test]
fn batched_forecast_matches_single_forecasts() {
    let artifact = train_artifact("LR", 24, 8);
    let dim = artifact.dim;
    let model = ServableModel::from_artifact(artifact).expect("servable");
    let windows = random_windows(9, 24 * dim, 0xBEE);
    let flat: Vec<f64> = windows.iter().flatten().copied().collect();
    let matrix = Matrix::from_vec(windows.len(), 24 * dim, flat).expect("matrix");
    let batched = model.forecast_batch(&matrix).expect("batch");
    for (r, window) in windows.iter().enumerate() {
        let single = model.forecast(window).expect("single");
        let same = batched
            .row(r)
            .iter()
            .zip(&single)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "row {r}: batched forecast differs from single");
    }
}

#[test]
fn save_load_file_round_trip() {
    let artifact = train_artifact("LR", 16, 4);
    let dir = std::env::temp_dir().join(format!("tfba-rt-{}", std::process::id()));
    let path = dir.join("model.tfba");
    artifact.save(&path).expect("save");
    let loaded = ModelArtifact::load(&path).expect("load");
    assert_eq!(artifact, loaded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_truncated_artifacts_are_structured_errors() {
    let artifact = train_artifact("Naive", 8, 4);
    let bytes = artifact.to_bytes();

    // Flipped payload bit: checksum catches it.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    match ModelArtifact::from_bytes(&flipped) {
        Err(ArtifactError::Format(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("expected Format error, got {other:?}"),
    }

    // Not an artifact at all.
    match ModelArtifact::from_bytes(b"{\"not\": \"an artifact\"}") {
        Err(ArtifactError::Format(msg)) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!("expected Format error, got {other:?}"),
    }

    // Truncation anywhere in the document decodes to an error, never a
    // panic.
    for cut in [0, 3, 4, 7, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ModelArtifact::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} was accepted"
        );
    }
}

#[test]
fn unknown_method_is_unsupported() {
    let profile = profile_by_name("ILI").expect("ILI profile");
    let series = profile.generate(Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let err = fit("NotAMethod", &split.train, 8, 4, norm, String::new(), None).unwrap_err();
    assert!(matches!(err, ArtifactError::Unsupported(_)), "{err}");
}

//! End-to-end tests for the declarative suite harness: `tfb bench
//! ls|run|cmp|rank` over real suite files, the auto-recorded history,
//! and the `obs record`/`obs gate` integration (multi-path record,
//! noise-aware double-run gate).

use std::path::{Path, PathBuf};
use std::process::Command;
use tfb_json::JsonValue;

fn tfb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfb_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny two-cell eval suite that runs in milliseconds.
const TINY_SUITE: &str = r#"
name = "eval/tiny"
engine = "eval"
description = "two-cell smoke suite"

[defaults]
dataset = "ILI"
characteristic = "seasonality"
horizon = 12
lookback = 24
max_len = 400
max_windows = 2
max_dim = 2
iters = 1

[[entry]]
name = "naive"
method = "Naive"

[[entry]]
name = "lr"
method = "LR"
"#;

fn write_tiny_suite(dir: &Path) -> PathBuf {
    let suites = dir.join("suites");
    std::fs::create_dir_all(&suites).unwrap();
    std::fs::write(suites.join("tiny.toml"), TINY_SUITE).unwrap();
    suites
}

fn run_tiny(dir: &Path, hist: &Path, out_tag: &str) -> PathBuf {
    let suites = write_tiny_suite(dir);
    let out_dir = dir.join(out_tag);
    let out = tfb(&[
        "bench",
        "run",
        "--suites",
        suites.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out_dir
}

#[test]
fn bench_ls_discovers_the_repo_suites() {
    // The real suite directory shipped in the repo, not a fixture: `ls`
    // must see at least the five suites the paper tables ride on.
    let suites = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches/suites");
    let out = tfb(&["bench", "ls", "--suites", suites.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for suite in [
        "eval/ci-smoke",
        "eval/etth1",
        "eval/table6",
        "eval/table7",
        "math/kernels",
        "serve/smoke",
    ] {
        assert!(
            text.contains(suite),
            "`bench ls` is missing {suite}:\n{text}"
        );
    }
    assert!(
        text.lines().count() >= 6,
        "fewer suites than expected:\n{text}"
    );
}

#[test]
fn bench_run_records_manifest_history_and_bench_rendering() {
    let dir = temp_dir("run");
    let hist = dir.join("history");
    let out_dir = run_tiny(&dir, &hist, "out");

    // The tfb-obs/v1 manifest, with measurement rows for both cells.
    let manifest_path = out_dir.join("eval_tiny.manifest.json");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let doc = JsonValue::parse(&text).expect("manifest parses");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("tfb-obs/v1")
    );
    let rows = doc
        .get("measurements")
        .and_then(|v| v.as_array())
        .expect("measurements section");
    let names: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("name").and_then(|s| s.as_str()))
        .collect();
    assert!(names.contains(&"eval/tiny/naive"), "{names:?}");
    assert!(names.contains(&"eval/tiny/lr"), "{names:?}");
    let wall = rows
        .iter()
        .find(|r| {
            r.get("name").and_then(|s| s.as_str()) == Some("eval/tiny/lr")
                && r.get("quantity").and_then(|s| s.as_str()) == Some("wall")
        })
        .expect("lr wall row");
    assert!(wall.get("min").and_then(JsonValue::as_f64).unwrap() > 0.0);
    assert_eq!(
        wall.get("characteristic").and_then(|s| s.as_str()),
        Some("seasonality")
    );

    // Accuracy scores ride both channels: measurement rows and metrics.
    assert!(
        rows.iter()
            .any(|r| r.get("quantity").and_then(|s| s.as_str()) == Some("msmape")),
        "no msmape measurement row"
    );
    assert!(
        doc.get("metrics").and_then(|v| v.as_array()).is_some(),
        "no metrics section (report_metric channel)"
    );

    // The BENCH-style rendering of the same measurements.
    let bench = std::fs::read_to_string(out_dir.join("eval_tiny.bench.json")).unwrap();
    let bench_doc = JsonValue::parse(&bench).unwrap();
    let entries = bench_doc
        .get("benchmarks")
        .and_then(|v| v.as_array())
        .expect("benchmarks array");
    assert_eq!(entries.len(), rows.len(), "rendering covers every row");

    // The run auto-recorded into the history.
    let index = std::fs::read_to_string(hist.join("index.jsonl")).unwrap();
    assert_eq!(index.lines().count(), 1, "one history entry");

    // `bench rank` regenerates a ranking from that history alone.
    let out = tfb(&[
        "bench",
        "rank",
        "--by",
        "characteristic",
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rank = String::from_utf8_lossy(&out.stdout);
    assert!(rank.contains("characteristic = seasonality"), "{rank}");
    assert!(
        rank.contains("| Naive |") && rank.contains("| LR |"),
        "{rank}"
    );

    // Grouping by dataset works off the same records.
    let out = tfb(&[
        "bench",
        "rank",
        "--by",
        "dataset",
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("dataset = ILI"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_run_glob_selects_cells_and_unknown_pattern_errors() {
    let dir = temp_dir("glob");
    let suites = write_tiny_suite(&dir);
    let hist = dir.join("history");
    let out = tfb(&[
        "bench",
        "run",
        "eval/tiny/lr",
        "--suites",
        suites.to_str().unwrap(),
        "--out",
        dir.join("out").to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 cell(s)"), "only the lr cell runs:\n{text}");

    let out = tfb(&[
        "bench",
        "run",
        "serve/nonexistent/*",
        "--suites",
        suites.to_str().unwrap(),
        "--history",
        "none",
    ]);
    assert!(!out.status.success(), "unknown pattern must fail loudly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_run_gate_passes_noise_aware() {
    let dir = temp_dir("gate");
    let hist = dir.join("history");
    run_tiny(&dir, &hist, "out1");
    run_tiny(&dir, &hist, "out2");
    let index = std::fs::read_to_string(hist.join("index.jsonl")).unwrap();
    assert_eq!(index.lines().count(), 2, "two history entries");

    // Accuracy metrics are deterministic (the engine verifies per-iter
    // determinism itself), so they hold at the tight default tolerance.
    // Timings on a shared test machine are not: the resource tolerance
    // is deliberately generous here — the CI workflow uses 50% on
    // quieter runners — because this test asserts the gate *pipeline*
    // (harness manifests flow through min-of-K aggregation and the
    // noise floor without tripping), not machine stability.
    let out = tfb(&[
        "obs",
        "gate",
        "--baseline",
        "first",
        "--candidate",
        "last",
        "--min-runs",
        "1",
        "--tol-pct",
        "400",
        "--history",
        hist.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "gate failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("gate: PASS"), "{stdout}");
    // Measurement rows must actually be covered by the gate (or
    // legitimately skipped under the noise floor), not dropped.
    assert!(
        stdout.contains("meas ") || stdout.contains("metric "),
        "no measurement/metric checks in the gate output:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_on_identical_manifests_is_exactly_zero() {
    let dir = temp_dir("gate_zero");
    let out_dir = run_tiny(&dir, &dir.join("history"), "out");
    let manifest = out_dir.join("eval_tiny.manifest.json");
    let m = manifest.to_str().unwrap();
    // Candidate == baseline: every check must read +0.0% even at a
    // 1% tolerance — the strict-determinism proof of the pipeline.
    let out = tfb(&[
        "obs",
        "gate",
        "--baseline",
        m,
        "--candidate",
        m,
        "--tol-pct",
        "1",
        "--history",
        "none",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("gate: PASS"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_cmp_renders_measurement_deltas() {
    let dir = temp_dir("cmp");
    let hist = dir.join("history");
    run_tiny(&dir, &hist, "out1");
    run_tiny(&dir, &hist, "out2");
    let out = tfb(&[
        "bench",
        "cmp",
        "first",
        "last",
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eval/tiny/lr/wall"), "{text}");
    assert!(text.contains('%'), "no deltas rendered:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn obs_record_accepts_multiple_paths_and_globs() {
    let dir = temp_dir("record");
    let out_dir = run_tiny(&dir, &dir.join("unused-history"), "out");
    // A second manifest file alongside the first.
    let a = out_dir.join("eval_tiny.manifest.json");
    let b = out_dir.join("copy.manifest.json");
    std::fs::copy(&a, &b).unwrap();

    // Two literal paths in one invocation.
    let hist = dir.join("hist-multi");
    let out = tfb(&[
        "obs",
        "record",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let index = std::fs::read_to_string(hist.join("index.jsonl")).unwrap();
    assert_eq!(index.lines().count(), 2, "both manifests recorded");

    // A glob pattern (quoted through to the binary, no shell expansion).
    let hist_glob = dir.join("hist-glob");
    let pattern = format!("{}/*.manifest.json", out_dir.to_str().unwrap());
    let out = tfb(&[
        "obs",
        "record",
        &pattern,
        "--history",
        hist_glob.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let index = std::fs::read_to_string(hist_glob.join("index.jsonl")).unwrap();
    assert_eq!(index.lines().count(), 2, "glob matched both manifests");

    // A glob that matches nothing fails loudly instead of recording
    // zero manifests silently.
    let out = tfb(&[
        "obs",
        "record",
        "no/such/dir/*.manifest.json",
        "--history",
        dir.join("hist-err").to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "empty glob must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

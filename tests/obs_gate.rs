//! End-to-end tests for the cross-run observability tooling: a real
//! mini-grid run feeds the history, and `tfb obs gate` catches injected
//! regressions in a tampered copy of its manifest.

use std::path::{Path, PathBuf};
use std::process::Command;
use tfb_json::JsonValue;

fn tfb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfb_gate_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const MINI_GRID: &str = r#"{
    "datasets": ["ILI"], "methods": ["Naive", "LR"], "horizons": [12],
    "lookbacks": [24], "strategy": {"rolling": {"stride": 8}},
    "metrics": ["mae", "mse"], "max_windows": 4, "max_len": 500, "max_dim": 2
}"#;

fn run_mini_grid(dir: &Path) -> String {
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, MINI_GRID).unwrap();
    let hist = dir.join("history");
    let out = tfb(&[
        "run",
        cfg_path.to_str().unwrap(),
        "--threads",
        "1",
        "--out",
        dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        hist.join("index.jsonl").exists(),
        "run lands in the history"
    );
    std::fs::read_to_string(dir.join("run.manifest.json")).expect("manifest written")
}

/// Doubles `total_ns` of every row of the phase path with the largest
/// single row, and inflates the first `mae` metric by 10%. Returns the
/// tampered JSON plus the names the gate must call out.
fn tamper(manifest: &str) -> (String, String, String) {
    let mut doc = JsonValue::parse(manifest).expect("manifest parses");
    let JsonValue::Object(ref mut fields) = doc else {
        panic!("manifest is an object")
    };
    // Find the slowest phase row's path.
    let mut slow_path = String::new();
    let mut slow_total = 0.0f64;
    for (k, v) in fields.iter() {
        if k != "phases" {
            continue;
        }
        let JsonValue::Array(rows) = v else { continue };
        for row in rows {
            let total = row
                .get("total_ns")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if total > slow_total {
                slow_total = total;
                slow_path = row
                    .get("path")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string();
            }
        }
    }
    assert!(!slow_path.is_empty(), "mini grid recorded phases");
    let mut metric_name = String::new();
    for (k, v) in fields.iter_mut() {
        match k.as_str() {
            "phases" => {
                let JsonValue::Array(rows) = v else { continue };
                for row in rows {
                    let path = row
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string();
                    if path != slow_path {
                        continue;
                    }
                    let JsonValue::Object(cells) = row else {
                        continue;
                    };
                    for (ck, cv) in cells.iter_mut() {
                        if ck == "total_ns" {
                            if let JsonValue::Number(n) = cv {
                                *n *= 2.0;
                            }
                        }
                    }
                }
            }
            "metrics" => {
                let JsonValue::Array(rows) = v else { continue };
                for row in rows.iter_mut() {
                    if row.get("name").and_then(JsonValue::as_str) != Some("mae")
                        || !metric_name.is_empty()
                    {
                        continue;
                    }
                    metric_name = format!(
                        "{}/{}",
                        row.get("dataset").and_then(JsonValue::as_str).unwrap_or(""),
                        row.get("method").and_then(JsonValue::as_str).unwrap_or("")
                    );
                    let JsonValue::Object(cells) = row else {
                        continue;
                    };
                    for (ck, cv) in cells.iter_mut() {
                        if ck == "value" {
                            if let JsonValue::Number(n) = cv {
                                *n *= 1.1;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    assert!(!metric_name.is_empty(), "mini grid reported an mae metric");
    (doc.pretty(), slow_path, metric_name)
}

#[test]
fn gate_catches_injected_phase_and_metric_regressions() {
    let dir = temp_dir("tamper");
    let manifest = run_mini_grid(&dir);
    let base_path = dir.join("run.manifest.json");

    // An untouched copy of the same run passes the gate at 20% tolerance.
    let copy_path = dir.join("copy.manifest.json");
    std::fs::write(&copy_path, &manifest).unwrap();
    let out = tfb(&[
        "obs",
        "gate",
        "--baseline",
        base_path.to_str().unwrap(),
        "--candidate",
        copy_path.to_str().unwrap(),
        "--tol-pct",
        "20",
        "--history",
        "none",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "unmodified copy must pass:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("gate: PASS"), "{stdout}");

    // A 2x phase inflation and a +10% MAE drift must both fail, by name.
    let (tampered, slow_path, metric_name) = tamper(&manifest);
    let bad_path = dir.join("tampered.manifest.json");
    std::fs::write(&bad_path, tampered).unwrap();
    let out = tfb(&[
        "obs",
        "gate",
        "--baseline",
        base_path.to_str().unwrap(),
        "--candidate",
        bad_path.to_str().unwrap(),
        "--tol-pct",
        "20",
        "--history",
        "none",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "tampered manifest must fail the gate"
    );
    assert!(
        stdout.contains(&format!("phase {slow_path}")),
        "gate must name the inflated phase {slow_path:?}:\n{stdout}"
    );
    assert!(
        stdout.contains(&metric_name) && stdout.contains("mae"),
        "gate must name the drifted metric {metric_name:?} mae:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_and_trend_read_the_history() {
    let dir = temp_dir("difftrend");
    let _ = run_mini_grid(&dir);
    let hist = dir.join("history");
    let hist = hist.to_str().unwrap();
    // Diff a run against itself via history selectors.
    let out = tfb(&["obs", "diff", "first", "last", "--history", hist]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wall_ns"), "{stdout}");
    assert!(stdout.contains("+0.0%"), "{stdout}");
    // Trend renders a sparkline per recorded metric cell.
    let out = tfb(&["obs", "trend", "--metric", "mae", "--history", hist]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mae"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sink_failure_disarms_the_whole_run() {
    // `--out` under a regular file: the events sink cannot open, so the
    // run must fall back to fully disarmed — no events, no manifest, no
    // history entry — instead of a half-armed run.
    let dir = temp_dir("disarm");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, MINI_GRID).unwrap();
    let hist = dir.join("history");
    let out_dir = blocker.join("sub");
    let out = tfb(&[
        "run",
        cfg_path.to_str().unwrap(),
        "--threads",
        "1",
        "--out",
        out_dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fully disarmed"),
        "must announce the fallback once:\n{stderr}"
    );
    // The results table still prints; nothing observability-shaped exists.
    assert!(String::from_utf8_lossy(&out.stdout).contains("Naive"));
    assert!(!hist.exists(), "a disarmed run must not touch the history");
    let _ = std::fs::remove_dir_all(&dir);
}

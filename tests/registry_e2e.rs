//! Model-fleet serving end to end over real TCP: concurrent clients
//! route to many models through a capacity-limited LRU while the index
//! is hot-swapped underneath them, and every response must stay
//! bit-identical to a direct per-request `predict` on the owning
//! artifact — eviction and swap may change *which* artifact answers,
//! never corrupt *what* it answers. Also: the shadow/canary mirror
//! produces drain-time stats from live traffic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tfb::artifact::{fit, ModelArtifact, ServableModel};
use tfb::data::{ChronoSplit, Normalization, Normalizer};
use tfb::registry::fleet::{Fleet, FleetConfig};
use tfb::registry::Registry;
use tfb::serve::{serve_fleet, ServerConfig};
use tfb_json::JsonValue;

const LOOKBACK: usize = 16;

/// One LR artifact on the TINY ILI profile; the horizon is the identity
/// of each fleet member (same lookback, so one window fits all).
fn trained_artifact(horizon: usize) -> ModelArtifact {
    let profile = tfb::datagen::profile_by_name("ILI").expect("profile");
    let series = profile.generate(tfb::datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    fit("LR", &train, LOOKBACK, horizon, norm, String::new(), None).expect("fit")
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Extracts the `forecast` array from a response body. Bitwise f64
/// comparison downstream is sound: the serializer emits the shortest
/// round-trippable representation and the parser is correctly rounded.
fn forecast_of(body: &str) -> Vec<f64> {
    let parsed = JsonValue::parse(body).expect("response JSON");
    parsed
        .get("forecast")
        .and_then(|f| f.as_array())
        .expect("forecast array")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tfb_registry_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_routing_is_bit_identical_under_churn_and_hot_swap() {
    const MODELS: usize = 6;
    const CLIENTS: usize = 4;
    let dir = temp_dir("stress");
    let registry = Registry::open(&dir).expect("registry");
    let mut original: Vec<Vec<u8>> = Vec::new();
    for i in 0..MODELS {
        let bytes = trained_artifact(4 + i).to_bytes();
        registry
            .publish_bytes(&format!("m{i}"), "prod", &bytes)
            .expect("publish");
        original.push(bytes);
    }
    let probe = ServableModel::from_artifact(ModelArtifact::from_bytes(&original[0]).unwrap())
        .expect("servable");
    let dim = probe.dim();
    let window: Vec<f64> = (0..LOOKBACK * dim)
        .map(|i| (i as f64) * 0.21 - 1.5)
        .collect();
    // Ground truth per model: a direct per-request `predict`, no server,
    // no cache, no mmap. Every routed response must equal one of these
    // exactly (for m0: either the original or, after the swap, the
    // replacement — never a mixture).
    let expected: Vec<Vec<f64>> = original
        .iter()
        .map(|bytes| {
            ServableModel::from_artifact(ModelArtifact::from_bytes(bytes).unwrap())
                .expect("servable")
                .forecast(&window)
                .expect("forecast")
        })
        .collect();
    let swap_bytes = trained_artifact(17).to_bytes();
    let swap_expected =
        ServableModel::from_artifact(ModelArtifact::from_bytes(&swap_bytes).unwrap())
            .expect("servable")
            .forecast(&window)
            .expect("forecast");

    let body = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )])
    .compact();
    // A cap far below the model count: routing continuously evicts and
    // cold-loads, so every client request races the LRU.
    let fleet = Arc::new(
        Fleet::open(
            Registry::open(&dir).expect("registry"),
            FleetConfig { resident_cap: 2 },
        )
        .expect("fleet"),
    );
    let handle = serve_fleet(
        Arc::clone(&fleet),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (body, expected, swap_expected, stop) =
                    (&body, &expected, &swap_expected, &stop);
                scope.spawn(move || {
                    let mut checked = 0usize;
                    let mut i = t; // stagger the per-thread model sequence
                    while !stop.load(Ordering::Relaxed) {
                        let m = i % MODELS;
                        let (status, reply) =
                            request(addr, "POST", &format!("/v1/forecast/m{m}"), body);
                        assert_eq!(status, 200, "m{m}: {reply}");
                        let got = forecast_of(&reply);
                        if m == 0 {
                            assert!(
                                got == expected[0] || got == *swap_expected,
                                "m0 served a forecast matching neither the original \
                                 nor the swapped-in artifact (torn read?)"
                            );
                        } else {
                            assert_eq!(got, expected[m], "m{m} drifted from direct predict");
                        }
                        checked += 1;
                        i += 1;
                    }
                    checked
                })
            })
            .collect();
        // Mid-traffic: first a same-bytes republish (deduplicated blob,
        // index generation bump — the no-op hot swap), then a real swap
        // of m0 to a different artifact.
        std::thread::sleep(Duration::from_millis(100));
        registry
            .publish_bytes("m0", "prod", &original[0])
            .expect("same-bytes republish");
        std::thread::sleep(Duration::from_millis(100));
        registry
            .publish_bytes("m0", "prod", &swap_bytes)
            .expect("swap republish");
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        let total: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
        assert!(total >= MODELS * 4, "only {total} request(s) checked");
    });
    // The swap must have fully propagated by now (the fleet re-stats the
    // index every 10 ms): the next routed answer is the new artifact's.
    let (status, reply) = request(addr, "POST", "/v1/forecast/m0", &body);
    assert_eq!(status, 200);
    assert_eq!(
        forecast_of(&reply),
        swap_expected,
        "hot swap did not propagate"
    );
    let _ = handle.shutdown();
    let stats = fleet.stats();
    assert!(
        stats.evictions > 0,
        "cap 2 over {MODELS} models under load must evict (stats: {stats:?})"
    );
    assert!(stats.hits > 0 && stats.misses > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn canary_mirror_reports_drift_stats_on_drain() {
    let dir = temp_dir("canary");
    let registry = Registry::open(&dir).expect("registry");
    let prod = trained_artifact(8).to_bytes();
    let canary = trained_artifact(11).to_bytes();
    registry
        .publish_bytes("ili", "prod", &prod)
        .expect("publish prod");
    registry
        .publish_bytes("ili", "canary", &canary)
        .expect("publish canary");

    let probe =
        ServableModel::from_artifact(ModelArtifact::from_bytes(&prod).unwrap()).expect("servable");
    let window: Vec<f64> = (0..LOOKBACK * probe.dim())
        .map(|i| (i as f64) * 0.07 - 0.9)
        .collect();
    let body = JsonValue::Object(vec![(
        "window".to_string(),
        JsonValue::Array(window.iter().map(|&v| JsonValue::Number(v)).collect()),
    )])
    .compact();

    let fleet = Arc::new(
        Fleet::open(
            Registry::open(&dir).expect("registry"),
            FleetConfig::default(),
        )
        .expect("fleet"),
    );
    let handle = serve_fleet(
        fleet,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();
    const REQUESTS: usize = 16;
    for _ in 0..REQUESTS {
        let (status, _) = request(addr, "POST", "/v1/forecast/ili", &body);
        assert_eq!(status, 200);
    }
    // Canary-labeled traffic is the candidate itself — it must NOT be
    // mirrored (that would shadow the shadow).
    let (status, _) = request(addr, "POST", "/v1/forecast/ili@canary", &body);
    assert_eq!(status, 200);
    let drain = handle.shutdown();
    assert_eq!(drain.canary.len(), 1, "one canaried model");
    let stats = &drain.canary[0];
    assert_eq!(stats.model, "ili");
    // try_send may shed under queue pressure, but with 16 sequential
    // requests the 256-slot queue cannot fill.
    assert_eq!(stats.requests, REQUESTS as u64, "all prod traffic mirrored");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.horizon, 11, "stats describe the candidate");
    assert!(stats.mean_abs_delta.is_finite());
    assert!(stats.mean_abs_primary > 0.0);
    assert!(stats.mean_abs_canary > 0.0);
    assert_eq!(stats.nan_primary + stats.nan_canary, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Cross-crate integration: generated archetypes flow through the
//! characteristic computations into the taxonomy with the intended labels,
//! and the coverage analyses (PFA/PCA of Figure 5) run end to end.

use tfb::characteristics::CharacteristicVector;
use tfb::datagen::univariate::UnivariateArchive;
use tfb::datagen::{SeriesBuilder, TrendKind};
use tfb::math::matrix::Matrix;
use tfb::math::pca::{principal_feature_selection, Pca};

#[test]
fn archive_spans_all_five_characteristics() {
    let archive = UnivariateArchive::generate(150, 7);
    let mut any = [false; 5];
    for s in &archive.series {
        let v = CharacteristicVector::of_series(s);
        let t = v.tag(Default::default());
        any[0] |= t.seasonality;
        any[1] |= t.trend;
        any[2] |= t.stationary;
        any[3] |= t.transition;
        any[4] |= t.shifting;
    }
    assert!(
        any.iter().all(|&b| b),
        "archive must contain every characteristic: {any:?}"
    );
}

#[test]
fn pca_of_archive_features_explains_variance() {
    let archive = UnivariateArchive::generate(200, 7);
    let rows: Vec<Vec<f64>> = archive
        .series
        .iter()
        .map(|s| CharacteristicVector::of_series(s).as_features().to_vec())
        .collect();
    let data = Matrix::from_rows(&rows).unwrap();
    let pca = Pca::fit(&data).unwrap();
    // Five characteristics are correlated enough that two components carry
    // a substantial share of the variance.
    let ratio = pca.explained_variance_ratio(2);
    assert!(ratio > 0.4, "2-component explained variance {ratio}");
    let proj = pca.transform(&data, 2).unwrap();
    assert_eq!(proj.cols(), 2);
    assert_eq!(proj.rows(), rows.len());
}

#[test]
fn pfa_selects_a_diverse_subset() {
    // PFA at the paper's 0.9 threshold keeps a strict, nonempty subset.
    let archive = UnivariateArchive::generate(300, 7);
    let rows: Vec<Vec<f64>> = archive
        .series
        .iter()
        .map(|s| CharacteristicVector::of_series(s).as_features().to_vec())
        .collect();
    let data = Matrix::from_rows(&rows).unwrap();
    let selected = principal_feature_selection(&data, 0.9).unwrap();
    assert!(!selected.is_empty());
    assert!(selected.len() <= rows.len());
    assert!(selected.iter().all(|&i| i < rows.len()));
}

type ArchetypeGen = Box<dyn Fn() -> Vec<f64>>;

#[test]
fn builder_archetypes_round_trip_through_tags() {
    let cases: [(&str, ArchetypeGen, usize); 3] = [
        (
            "trend",
            Box::new(|| {
                SeriesBuilder::new(400, 50)
                    .trend(TrendKind::Linear { slope: 0.4 })
                    .noise(0.6)
                    .build()
            }),
            1,
        ),
        (
            "seasonality",
            Box::new(|| {
                SeriesBuilder::new(400, 51)
                    .seasonal(24, 4.0)
                    .noise(0.4)
                    .build()
            }),
            0,
        ),
        (
            "shifting",
            Box::new(|| {
                SeriesBuilder::new(400, 52)
                    .level_shift(0.5, 10.0)
                    .ar(0.6)
                    .noise(0.8)
                    .build()
            }),
            2,
        ),
    ];
    for (name, gen, tag_index) in cases {
        let xs = gen();
        let v = CharacteristicVector::compute(&xs, Some(24));
        let t = v.tag(Default::default());
        let flags = [t.seasonality, t.trend, t.shifting];
        assert!(
            match tag_index {
                0 => flags[0],
                1 => flags[1],
                _ => flags[2],
            },
            "{name} archetype not tagged: {v:?}"
        );
    }
}

#[test]
fn csv_format_round_trips_generated_datasets() {
    let profile = tfb::datagen::profile_by_name("NASDAQ").unwrap();
    let series = profile.generate(tfb::datagen::Scale::TINY);
    let csv = tfb::data::csvfmt::to_csv(&series);
    let back = tfb::data::csvfmt::from_csv(&csv, "NASDAQ", series.frequency, series.domain)
        .expect("parses");
    assert_eq!(back.dim(), series.dim());
    assert_eq!(back.len(), series.len());
    for (a, b) in back.values().iter().zip(series.values()) {
        assert!((a - b).abs() < 1e-9);
    }
}

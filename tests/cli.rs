//! Smoke tests for the `tfb` command-line driver.

use std::process::Command;

fn tfb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn datasets_lists_all_25() {
    let out = tfb(&["datasets"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ETTh1"));
    assert!(text.contains("Wike2000"));
    // Header + 25 rows.
    assert_eq!(text.lines().count(), 26);
}

#[test]
fn methods_lists_all_paradigms() {
    let out = tfb(&["methods"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["VAR", "XGB", "PatchTST", "ARIMA"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn characterize_scores_a_dataset() {
    let out = tfb(&["characterize", "ILI", "--max-len", "400"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("seasonality:"));
    assert!(text.contains("correlation:"));
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = tfb(&["characterize", "NotADataset"]);
    assert!(!out.status.success());
}

#[test]
fn missing_subcommand_prints_usage() {
    let out = tfb(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn example_config_is_valid_json_and_runnable_shape() {
    let out = tfb(&["example-config"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let cfg = tfb::core::BenchmarkConfig::from_json(&text).expect("valid config");
    assert!(!cfg.jobs().is_empty());
}

#[test]
fn run_executes_a_tiny_config() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(
        &cfg_path,
        r#"{
            "datasets": ["ILI"], "methods": ["Naive", "Mean"], "horizons": [12],
            "lookbacks": [24], "strategy": {"rolling": {"stride": 8}},
            "metrics": ["mae"], "max_windows": 4, "max_len": 500, "max_dim": 2
        }"#,
    )
    .unwrap();
    let hist = dir.join("history");
    let out = tfb(&[
        "run",
        cfg_path.to_str().unwrap(),
        "--threads",
        "1",
        "--out",
        dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Naive") && text.contains("Mean"));
    assert!(dir.join("run.csv").exists());
    assert!(dir.join("run.log").exists());
    // The recorded run lands in the history automatically.
    assert!(hist.join("index.jsonl").exists());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn obs_without_subcommand_prints_usage() {
    let out = tfb(&["obs"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage"));
    assert!(text.contains("obs diff") && text.contains("obs gate") && text.contains("obs trend"));
}

//! Smoke tests for the `tfb` command-line driver.

use std::process::Command;

fn tfb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn datasets_lists_all_25() {
    let out = tfb(&["datasets"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ETTh1"));
    assert!(text.contains("Wike2000"));
    // Header + 25 rows.
    assert_eq!(text.lines().count(), 26);
}

#[test]
fn methods_lists_all_paradigms() {
    let out = tfb(&["methods"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["VAR", "XGB", "PatchTST", "ARIMA"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn characterize_scores_a_dataset() {
    let out = tfb(&["characterize", "ILI", "--max-len", "400"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("seasonality:"));
    assert!(text.contains("correlation:"));
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = tfb(&["characterize", "NotADataset"]);
    assert!(!out.status.success());
}

#[test]
fn missing_subcommand_prints_usage() {
    let out = tfb(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn example_config_is_valid_json_and_runnable_shape() {
    let out = tfb(&["example-config"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let cfg = tfb::core::BenchmarkConfig::from_json(&text).expect("valid config");
    assert!(!cfg.jobs().is_empty());
}

#[test]
fn run_executes_a_tiny_config() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(
        &cfg_path,
        r#"{
            "datasets": ["ILI"], "methods": ["Naive", "Mean"], "horizons": [12],
            "lookbacks": [24], "strategy": {"rolling": {"stride": 8}},
            "metrics": ["mae"], "max_windows": 4, "max_len": 500, "max_dim": 2
        }"#,
    )
    .unwrap();
    let hist = dir.join("history");
    let out = tfb(&[
        "run",
        cfg_path.to_str().unwrap(),
        "--threads",
        "1",
        "--out",
        dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Naive") && text.contains("Mean"));
    assert!(dir.join("run.csv").exists());
    assert!(dir.join("run.log").exists());
    // The recorded run lands in the history automatically.
    assert!(hist.join("index.jsonl").exists());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn train_without_out_fails_with_usage_hint() {
    let out = tfb(&["train", "--method", "LR", "--dataset", "ILI"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn train_rejects_unknown_method_and_dataset() {
    let out = tfb(&["train", "--method", "NotAMethod", "--out", "/dev/null"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NotAMethod"), "{err}");

    let out = tfb(&["train", "--dataset", "NotADataset", "--out", "/dev/null"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NotADataset"), "{err}");
}

#[test]
fn serve_without_model_fails_with_usage_hint() {
    let out = tfb(&["serve"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn serve_missing_artifact_path_is_a_structured_error() {
    let out = tfb(&["serve", "--model", "/nonexistent/model.tfba"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot load"), "{err}");
}

#[test]
fn serve_malformed_artifact_is_a_structured_error_not_a_panic() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.tfba");
    std::fs::write(&path, b"definitely not an artifact").unwrap();
    let out = tfb(&["serve", "--model", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("magic"), "wanted a decode error, got: {err}");
    assert!(
        !err.contains("panicked"),
        "a malformed artifact must not panic the CLI: {err}"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn train_then_serve_round_trip_over_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join(format!("tfb_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.tfba");
    let out = tfb(&[
        "train",
        "--method",
        "LR",
        "--dataset",
        "ILI",
        "--lookback",
        "16",
        "--horizon",
        "4",
        "--max-len",
        "500",
        "--max-dim",
        "2",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // Serve on an ephemeral port, discover it from stdout, then ask the
    // server to drain itself over HTTP.
    let mut child = Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listen line format")
        .to_string();

    let request = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                format!(
                    "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let status = reply
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, body) = request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let window: Vec<String> = (0..16 * 2).map(|i| format!("{}.5", i)).collect();
    let (status, body) = request(
        "POST",
        "/forecast",
        &format!("{{\"window\": [{}]}}", window.join(", ")),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"forecast\""), "{body}");
    let (status, _) = request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exits");
    assert!(exit.success(), "serve did not exit cleanly after drain");
    std::fs::remove_dir_all(dir).unwrap();
}

/// A real (tiny) artifact for registry CLI tests, built in-process —
/// the CLI path under test is the registry, not `tfb train`.
fn tiny_artifact_bytes(horizon: usize) -> Vec<u8> {
    use tfb::data::{ChronoSplit, Normalization, Normalizer};
    let profile = tfb::datagen::profile_by_name("ILI").expect("profile");
    let series = profile.generate(tfb::datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    tfb::artifact::fit("LR", &train, 12, horizon, norm, String::new(), None)
        .expect("fit")
        .to_bytes()
}

#[test]
fn registry_publish_ls_fsck_lifecycle_and_bit_rot_detection() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_registry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reg = dir.join("reg");
    let artifact = dir.join("m.tfba");
    std::fs::write(&artifact, tiny_artifact_bytes(4)).unwrap();

    let out = tfb(&[
        "registry",
        "publish",
        artifact.to_str().unwrap(),
        "--name",
        "ili-lr",
        "--registry",
        reg.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("published ili-lr@prod"), "{text}");

    let out = tfb(&["registry", "ls", "--registry", reg.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ili-lr@prod"));

    let out = tfb(&["registry", "fsck", "--registry", reg.to_str().unwrap()]);
    assert!(out.status.success(), "clean store must fsck clean");

    // Flip one byte inside the stored blob: the checksum walk must
    // catch it and the process must exit non-zero.
    let blobs: Vec<_> = std::fs::read_dir(reg.join("blobs"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(blobs.len(), 1);
    let mut bytes = std::fs::read(&blobs[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&blobs[0], &bytes).unwrap();
    let out = tfb(&["registry", "fsck", "--registry", reg.to_str().unwrap()]);
    assert!(!out.status.success(), "bit rot must fail fsck");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("CORRUPT"), "{err}");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn registry_publish_rejects_garbage_before_storing() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_reggarbage_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.tfba");
    std::fs::write(&bad, b"not an artifact at all").unwrap();
    let reg = dir.join("reg");
    let out = tfb(&[
        "registry",
        "publish",
        bad.to_str().unwrap(),
        "--name",
        "x",
        "--registry",
        reg.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(
        !reg.join("blobs").exists()
            || std::fs::read_dir(reg.join("blobs"))
                .unwrap()
                .next()
                .is_none(),
        "a rejected artifact must leave no blob behind"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn registry_promote_is_gated_by_canary_manifests() {
    use tfb_obs::manifest::MetricRow;
    use tfb_obs::Manifest;
    let dir = std::env::temp_dir().join(format!("tfb_cli_promote_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reg = dir.join("reg");
    let registry = tfb::registry::Registry::open(&reg).expect("registry");
    registry
        .publish_bytes("ili", "prod", &tiny_artifact_bytes(4))
        .expect("publish prod");
    registry
        .publish_bytes("ili", "canary", &tiny_artifact_bytes(7))
        .expect("publish canary");

    let row = |name: &str, value: f64| MetricRow {
        dataset: "ili".to_string(),
        method: "mirror".to_string(),
        horizon: 7,
        name: name.to_string(),
        value,
    };
    let baseline_path = dir.join("baseline.json");
    let candidate_path = dir.join("candidate.json");
    let baseline = Manifest {
        metrics: vec![row("forecast_mean_abs", 1.0)],
        ..Manifest::default()
    };
    baseline.write(&baseline_path).unwrap();
    // Candidate drifts +100% — far past the 10% default tolerance.
    let candidate = Manifest {
        metrics: vec![row("forecast_mean_abs", 2.0)],
        ..Manifest::default()
    };
    candidate.write(&candidate_path).unwrap();

    let out = tfb(&[
        "registry",
        "promote",
        "ili",
        "--registry",
        reg.to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
        "--candidate",
        candidate_path.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "a drifting canary must not promote");
    assert!(String::from_utf8_lossy(&out.stderr).contains("gate FAILED"));
    let index = registry.load_index().expect("index");
    assert!(
        index.models["ili"].labels.contains_key("canary"),
        "failed gate must leave the canary staged"
    );

    // A healthy candidate (within tolerance) passes and flips the label.
    let candidate = Manifest {
        metrics: vec![row("forecast_mean_abs", 1.02)],
        ..Manifest::default()
    };
    candidate.write(&candidate_path).unwrap();
    let out = tfb(&[
        "registry",
        "promote",
        "ili",
        "--registry",
        reg.to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
        "--candidate",
        candidate_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let index = registry.load_index().expect("index");
    assert!(!index.models["ili"].labels.contains_key("canary"));
    assert!(
        index.models["ili"].previous.is_some(),
        "rollback point kept"
    );

    // And rollback restores the displaced production blob.
    let out = tfb(&[
        "registry",
        "rollback",
        "ili",
        "--registry",
        reg.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn registry_promote_vetoes_nan_candidates_even_within_tolerance() {
    use tfb_obs::manifest::MetricRow;
    use tfb_obs::Manifest;
    let dir = std::env::temp_dir().join(format!("tfb_cli_nanveto_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reg = dir.join("reg");
    let registry = tfb::registry::Registry::open(&reg).expect("registry");
    registry
        .publish_bytes("ili", "canary", &tiny_artifact_bytes(7))
        .expect("publish canary");
    let row = |name: &str, value: f64| MetricRow {
        dataset: "ili".to_string(),
        method: "mirror".to_string(),
        horizon: 7,
        name: name.to_string(),
        value,
    };
    let baseline_path = dir.join("baseline.json");
    let candidate_path = dir.join("candidate.json");
    Manifest {
        metrics: vec![
            row("forecast_mean_abs", 1.0),
            row("forecast_nan_values", 0.0),
        ],
        ..Manifest::default()
    }
    .write(&baseline_path)
    .unwrap();
    // Identical accuracy, but the candidate emitted NaN values: the
    // percent gate cannot see that, the explicit veto must.
    Manifest {
        metrics: vec![
            row("forecast_mean_abs", 1.0),
            row("forecast_nan_values", 3.0),
        ],
        ..Manifest::default()
    }
    .write(&candidate_path)
    .unwrap();
    let out = tfb(&[
        "registry",
        "promote",
        "ili",
        "--registry",
        reg.to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
        "--candidate",
        candidate_path.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "NaN forecasts must veto promotion");
    assert!(String::from_utf8_lossy(&out.stdout).contains("NaN"));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn registry_without_subcommand_prints_usage() {
    let out = tfb(&["registry"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("publish|ls|gc|fsck|promote|rollback"));
}

#[test]
fn obs_without_subcommand_prints_usage() {
    let out = tfb(&["obs"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage"));
    assert!(text.contains("obs diff") && text.contains("obs gate") && text.contains("obs trend"));
}

//! Smoke tests for the `tfb` command-line driver.

use std::process::Command;

fn tfb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn datasets_lists_all_25() {
    let out = tfb(&["datasets"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ETTh1"));
    assert!(text.contains("Wike2000"));
    // Header + 25 rows.
    assert_eq!(text.lines().count(), 26);
}

#[test]
fn methods_lists_all_paradigms() {
    let out = tfb(&["methods"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["VAR", "XGB", "PatchTST", "ARIMA"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn characterize_scores_a_dataset() {
    let out = tfb(&["characterize", "ILI", "--max-len", "400"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("seasonality:"));
    assert!(text.contains("correlation:"));
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = tfb(&["characterize", "NotADataset"]);
    assert!(!out.status.success());
}

#[test]
fn missing_subcommand_prints_usage() {
    let out = tfb(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn example_config_is_valid_json_and_runnable_shape() {
    let out = tfb(&["example-config"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let cfg = tfb::core::BenchmarkConfig::from_json(&text).expect("valid config");
    assert!(!cfg.jobs().is_empty());
}

#[test]
fn run_executes_a_tiny_config() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(
        &cfg_path,
        r#"{
            "datasets": ["ILI"], "methods": ["Naive", "Mean"], "horizons": [12],
            "lookbacks": [24], "strategy": {"rolling": {"stride": 8}},
            "metrics": ["mae"], "max_windows": 4, "max_len": 500, "max_dim": 2
        }"#,
    )
    .unwrap();
    let hist = dir.join("history");
    let out = tfb(&[
        "run",
        cfg_path.to_str().unwrap(),
        "--threads",
        "1",
        "--out",
        dir.to_str().unwrap(),
        "--history",
        hist.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Naive") && text.contains("Mean"));
    assert!(dir.join("run.csv").exists());
    assert!(dir.join("run.log").exists());
    // The recorded run lands in the history automatically.
    assert!(hist.join("index.jsonl").exists());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn train_without_out_fails_with_usage_hint() {
    let out = tfb(&["train", "--method", "LR", "--dataset", "ILI"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn train_rejects_unknown_method_and_dataset() {
    let out = tfb(&["train", "--method", "NotAMethod", "--out", "/dev/null"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NotAMethod"), "{err}");

    let out = tfb(&["train", "--dataset", "NotADataset", "--out", "/dev/null"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NotADataset"), "{err}");
}

#[test]
fn serve_without_model_fails_with_usage_hint() {
    let out = tfb(&["serve"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn serve_missing_artifact_path_is_a_structured_error() {
    let out = tfb(&["serve", "--model", "/nonexistent/model.tfba"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot load"), "{err}");
}

#[test]
fn serve_malformed_artifact_is_a_structured_error_not_a_panic() {
    let dir = std::env::temp_dir().join(format!("tfb_cli_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.tfba");
    std::fs::write(&path, b"definitely not an artifact").unwrap();
    let out = tfb(&["serve", "--model", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("magic"), "wanted a decode error, got: {err}");
    assert!(
        !err.contains("panicked"),
        "a malformed artifact must not panic the CLI: {err}"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn train_then_serve_round_trip_over_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join(format!("tfb_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.tfba");
    let out = tfb(&[
        "train",
        "--method",
        "LR",
        "--dataset",
        "ILI",
        "--lookback",
        "16",
        "--horizon",
        "4",
        "--max-len",
        "500",
        "--max-dim",
        "2",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // Serve on an ephemeral port, discover it from stdout, then ask the
    // server to drain itself over HTTP.
    let mut child = Command::new(env!("CARGO_BIN_EXE_tfb"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listen line format")
        .to_string();

    let request = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                format!(
                    "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let status = reply
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    };

    let (status, body) = request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let window: Vec<String> = (0..16 * 2).map(|i| format!("{}.5", i)).collect();
    let (status, body) = request(
        "POST",
        "/forecast",
        &format!("{{\"window\": [{}]}}", window.join(", ")),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"forecast\""), "{body}");
    let (status, _) = request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exits");
    assert!(exit.success(), "serve did not exit cleanly after drain");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn obs_without_subcommand_prints_usage() {
    let out = tfb(&["obs"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage"));
    assert!(text.contains("obs diff") && text.contains("obs gate") && text.contains("obs trend"));
}

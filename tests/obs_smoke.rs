//! Observability smoke + invariance tests over the full pipeline.
//!
//! One mini-grid runs three times through `run_jobs`: unobserved, under an
//! armed recording run, and unobserved again. The forecast metrics must be
//! bit-for-bit identical in all three — the probes only read clocks and bump
//! counters, so arming the sink must never perturb a result. The armed run
//! must leave behind a parseable JSONL event stream and a manifest covering
//! every pipeline phase (data generation, training, inference, metrics).
//!
//! The recorder is process-global, so everything lives in ONE `#[test]` —
//! concurrent test functions would interleave their spans into the run.

#![cfg(feature = "obs")]

use std::collections::BTreeMap;
use tfb::core::{run_jobs, BenchmarkConfig, Parallelism};
use tfb_json::JsonValue;
use tfb_nn::TrainConfig;

fn grid() -> BenchmarkConfig {
    // Naive exercises the statistical path; NLinear exercises window
    // training so the manifest sees train/epoch spans.
    BenchmarkConfig::from_json(
        r#"{
            "datasets": ["ILI", "NN5"],
            "methods": ["Naive", "NLinear"],
            "horizons": [12],
            "lookbacks": [24],
            "strategy": {"rolling": {"stride": 8}},
            "metrics": ["mae", "mse", "smape"],
            "max_windows": 4,
            "max_len": 500,
            "max_dim": 2
        }"#,
    )
    .expect("valid config")
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        max_samples: 64,
        ..TrainConfig::default()
    }
}

type CellKey = (String, String, usize);

fn run_grid() -> Vec<(CellKey, usize, BTreeMap<String, f64>)> {
    run_jobs(&grid(), Parallelism::Threads(2), Some(train_config()))
        .into_iter()
        .map(|r| {
            let o = r.expect("job succeeds");
            (
                (o.dataset.clone(), o.method.clone(), o.horizon),
                o.n_windows,
                o.metrics,
            )
        })
        .collect()
}

#[test]
fn armed_run_is_invisible_to_metrics_and_covers_all_phases() {
    let out_dir = std::env::temp_dir().join("tfb_obs_smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    let events_path = out_dir.join("run.events.jsonl");

    // 1. Baseline, recorder disarmed.
    assert!(!tfb_obs::enabled());
    let baseline = run_grid();

    // 2. The same grid under an armed run.
    tfb_obs::start_run(tfb_obs::RunOptions {
        events_path: Some(events_path.clone()),
    })
    .expect("sink opens");
    assert!(tfb_obs::enabled());
    let observed = run_grid();
    let manifest = tfb_obs::finish_run(&[("test", "obs_smoke".to_string())])
        .expect("armed run yields a manifest");
    assert!(!tfb_obs::enabled());

    // 3. Baseline again after the run, to catch lingering state.
    let after = run_grid();

    // Property: instrumentation never changes a forecast, bit for bit.
    assert_eq!(baseline, observed, "armed recording perturbed the metrics");
    assert_eq!(baseline, after, "a finished run left state behind");

    // The manifest covers every pipeline phase.
    let phases = manifest.phase_names();
    for phase in ["datagen", "train", "infer", "metrics", "job", "eval"] {
        assert!(
            phases.iter().any(|p| p == phase),
            "manifest phases {phases:?} missing {phase}"
        );
    }

    // Phase rows carry the grid's cells with sane aggregates.
    let job_rows: Vec<_> = manifest.phases.iter().filter(|r| r.path == "job").collect();
    assert_eq!(job_rows.len(), 4, "one job row per (dataset, method) cell");
    for row in &job_rows {
        assert_eq!(row.count, 1);
        assert!(row.total_ns > 0);
        assert!(row.min_ns <= row.max_ns && row.max_ns <= row.total_ns);
    }
    assert!(
        manifest
            .phases
            .iter()
            .any(|r| r.path.ends_with("epoch") && r.dataset == "ILI"),
        "training epochs must aggregate under their dataset"
    );

    // Dataset-cache counters: 2 misses (2 datasets), hits for the rest.
    let counter = |name: &str| {
        manifest
            .counters
            .iter()
            .find(|c| c.0 == name)
            .map(|c| c.1)
            .unwrap_or(0)
    };
    assert_eq!(counter("dataset_cache/miss"), 2);
    assert_eq!(counter("dataset_cache/hit"), 2);
    assert!(counter("eval/windows") > 0);
    assert!(counter("gemm/calls") > 0, "NLinear training must hit GEMM");

    // The manifest serializes to valid, schema-tagged JSON.
    let json = manifest.to_json();
    let doc = JsonValue::parse(&json).expect("manifest JSON parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("tfb-obs/v1")
    );
    assert!(manifest.wall_ns > 0);

    // Every event line is standalone JSON; the stream is framed by
    // run_start/run_end and records at least one span per phase.
    let events = std::fs::read_to_string(&events_path).expect("events written");
    let lines: Vec<&str> = events.lines().collect();
    assert!(
        lines.len() >= 2 + 4,
        "expected run framing plus span events"
    );
    let parsed: Vec<JsonValue> = lines
        .iter()
        .map(|l| JsonValue::parse(l).expect("event line parses"))
        .collect();
    let ev = |v: &JsonValue| {
        v.get("ev")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(ev(&parsed[0]), "run_start");
    assert_eq!(ev(parsed.last().unwrap()), "run_end");
    assert!(parsed[1..lines.len() - 1].iter().all(|v| ev(v) == "span"));

    let _ = std::fs::remove_dir_all(&out_dir);
}

//! Integration tests asserting the *shape* of the paper's findings on the
//! synthetic collection — the qualitative claims the benches quantify.

use tfb::core::data::{load, DatasetCharacteristics};
use tfb::core::eval::{evaluate, EvalSettings};
use tfb::core::{build_method, Metric};
use tfb::datagen::Scale;

const SCALE: Scale = Scale {
    max_len: 1200,
    max_dim: 4,
};

fn mae_of(method: &str, dataset: &str, lookback: usize, horizon: usize) -> f64 {
    let handle = load(dataset, SCALE).expect("dataset exists");
    let mut settings = EvalSettings::rolling(lookback, horizon, handle.profile.split);
    settings.max_windows = 15;
    let mut m =
        build_method(method, lookback, horizon, handle.series.dim(), None).expect("method exists");
    evaluate(&mut m, &handle.series, &settings)
        .map(|o| o.metric(Metric::Mae))
        .unwrap_or(f64::INFINITY)
}

#[test]
fn characteristic_extremes_match_figure8_selection() {
    // The paper picks these datasets as the per-characteristic maxima.
    // On the synthetic collection the same datasets must rank in the top
    // three of their characteristic among a competitive subset.
    let score = |name: &str| {
        let h = load(name, SCALE).expect("dataset exists");
        DatasetCharacteristics::compute(&h.series, 3)
    };
    let fred = score("FRED-MD");
    let elec = score("Electricity");
    let bay = score("PEMS-BAY");
    let exch = score("Exchange");
    let wind = score("Wind");
    assert!(fred.trend > elec.trend && fred.trend > bay.trend && fred.trend > wind.trend);
    assert!(elec.seasonality > fred.seasonality && elec.seasonality > exch.seasonality);
    assert!(bay.correlation > exch.correlation && bay.correlation > wind.correlation);
}

#[test]
fn seasonal_naive_beats_naive_on_seasonal_data() {
    // Electricity is the seasonality extreme: exploiting the period must pay.
    let naive = mae_of("Naive", "Electricity", 48, 24);
    let seasonal = mae_of("SeasonalNaive", "Electricity", 48, 24);
    assert!(seasonal < naive, "seasonal {seasonal} vs naive {naive}");
}

#[test]
fn naive_is_hard_to_beat_on_random_walks() {
    // Exchange is a unit-root walk: the naive forecast is near-optimal and
    // fancy pattern models cannot beat it by much (the paper's Issue 2 in
    // its sharpest form).
    let naive = mae_of("Naive", "Exchange", 36, 12);
    let knn = mae_of("KNN", "Exchange", 36, 12);
    assert!(
        naive < knn * 1.1,
        "naive {naive} should be competitive with KNN {knn}"
    );
}

#[test]
fn linear_models_learn_the_ili_season() {
    // ILI has strong yearly seasonality: a trained LR must beat naive.
    let naive = mae_of("Naive", "ILI", 104, 24);
    let lr = mae_of("LR", "ILI", 104, 24);
    assert!(lr < naive, "lr {lr} vs naive {naive}");
}

#[test]
fn drop_last_distorts_reported_results() {
    // Table 2: enabling drop-last with a batch size changes the reported
    // error relative to the fair keep-all pipeline.
    let handle = load("ETTh2", SCALE).expect("dataset exists");
    let run = |drop: Option<(usize, bool)>| {
        let mut settings = EvalSettings::rolling(96, 48, handle.profile.split);
        settings.metrics = vec![Metric::Mse];
        settings.drop_last = drop;
        let mut m = build_method("Naive", 96, 48, handle.series.dim(), None).unwrap();
        let out = evaluate(&mut m, &handle.series, &settings).unwrap();
        (out.metric(Metric::Mse), out.n_windows)
    };
    let (fair_mse, fair_n) = run(None);
    let (drop_mse, drop_n) = run(Some((64, true)));
    assert!(drop_n < fair_n, "drop-last must discard windows");
    assert!(
        (drop_mse - fair_mse).abs() > 1e-9,
        "discarding windows must change the reported score"
    );
}

#[test]
fn metrics_on_identical_forecasts_are_consistent() {
    // MSE = RMSE^2 and WAPE/MAE relations hold through the pipeline.
    let handle = load("NN5", SCALE).expect("dataset exists");
    let mut settings = EvalSettings::rolling(36, 12, handle.profile.split);
    settings.metrics = vec![Metric::Mae, Metric::Mse, Metric::Rmse, Metric::Wape];
    settings.max_windows = 1; // single window: aggregate == per-window value
    let mut m = build_method("Mean", 36, 12, handle.series.dim(), None).unwrap();
    let out = evaluate(&mut m, &handle.series, &settings).unwrap();
    let rmse = out.metric(Metric::Rmse);
    let mse = out.metric(Metric::Mse);
    assert!((rmse * rmse - mse).abs() < 1e-9 * (1.0 + mse));
}

#[test]
fn hyperparameter_search_is_bounded_to_eight_sets() {
    let cfg = tfb::core::BenchmarkConfig::from_json(
        r#"{
            "datasets": ["ILI"], "methods": ["Naive"], "horizons": [12],
            "lookbacks": [8, 16, 24, 32, 40, 48, 56, 64, 72, 80],
            "strategy": {"rolling": {"stride": 8}}, "metrics": ["mae"],
            "max_len": 600, "max_dim": 2
        }"#,
    )
    .unwrap();
    assert_eq!(cfg.search_space().len(), 8);
}

//! Property-based tests (proptest) on the cross-crate invariants the
//! benchmark's fairness rests on: metric axioms, normalization roundtrips,
//! split/window partitioning, and numeric-substrate algebra.

use proptest::prelude::*;
use tfb::core::metrics::{compute, Metric, MetricContext};
use tfb::data::{
    csvfmt, window::lag_matrix, Batching, ChronoSplit, Domain, Frequency, MultiSeries,
    Normalization, Normalizer, SplitRatio, WindowSampler,
};
use tfb::math::fft::{fft, Complex};
use tfb::math::matrix::Matrix;
use tfb::math::stats::{self, zscore};

const CTX: MetricContext<'static> = MetricContext {
    train: None,
    period: 1,
};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6_f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- metric axioms -------------------------------------------------

    #[test]
    fn metrics_are_nonnegative(f in finite_vec(1..40), y in finite_vec(1..40)) {
        let n = f.len().min(y.len());
        for m in [Metric::Mae, Metric::Mse, Metric::Rmse, Metric::Smape, Metric::Msmape] {
            let v = compute(m, &f[..n], &y[..n], CTX);
            prop_assert!(v >= 0.0 || v.is_nan(), "{m:?} = {v}");
        }
    }

    #[test]
    fn perfect_forecast_is_zero_error(y in finite_vec(1..40)) {
        for m in [Metric::Mae, Metric::Mse, Metric::Rmse, Metric::Wape] {
            let v = compute(m, &y, &y, CTX);
            prop_assert!(v == 0.0 || v.is_infinite(), "{m:?} = {v}");
        }
    }

    #[test]
    fn mae_is_translation_invariant_mse_scales_quadratically(
        y in finite_vec(2..30),
        shift in -100.0_f64..100.0,
        scale in 0.1_f64..10.0,
    ) {
        let f: Vec<f64> = y.iter().map(|v| v + shift).collect();
        let mae = compute(Metric::Mae, &f, &y, CTX);
        prop_assert!((mae - shift.abs()).abs() < 1e-6 * (1.0 + shift.abs()));
        let fs: Vec<f64> = y.iter().map(|v| v + scale).collect();
        let mse = compute(Metric::Mse, &fs, &y, CTX);
        prop_assert!((mse - scale * scale).abs() < 1e-6 * (1.0 + scale * scale));
    }

    #[test]
    fn rmse_dominates_mae(f in finite_vec(2..30), y in finite_vec(2..30)) {
        let n = f.len().min(y.len());
        let mae = compute(Metric::Mae, &f[..n], &y[..n], CTX);
        let rmse = compute(Metric::Rmse, &f[..n], &y[..n], CTX);
        // Jensen: RMSE >= MAE always.
        prop_assert!(rmse + 1e-9 * (1.0 + rmse) >= mae, "rmse {rmse} < mae {mae}");
    }

    #[test]
    fn smape_is_bounded_by_200_percent(f in finite_vec(1..30), y in finite_vec(1..30)) {
        let n = f.len().min(y.len());
        let v = compute(Metric::Smape, &f[..n], &y[..n], CTX);
        prop_assert!(v.is_infinite() || v <= 200.0 + 1e-9, "{v}");
    }

    // ---- normalization -------------------------------------------------

    #[test]
    fn normalizer_roundtrips(values in finite_vec(8..60)) {
        let series = MultiSeries::from_channels(
            "p", Frequency::Daily, Domain::Other, std::slice::from_ref(&values),
        ).unwrap();
        for scheme in [Normalization::ZScore, Normalization::MinMax, Normalization::None] {
            let norm = Normalizer::fit(&series, scheme);
            let fwd = norm.apply(&series).unwrap();
            let back = norm.invert(&fwd).unwrap();
            for (a, b) in back.values().iter().zip(series.values()) {
                prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{scheme:?}");
            }
        }
    }

    #[test]
    fn zscore_output_is_standardized(values in finite_vec(4..80)) {
        let z = zscore(&values);
        prop_assert!(stats::mean(&z).abs() < 1e-6);
        let sd = stats::std_dev(&z);
        prop_assert!(sd < 1e-6 || (sd - 1.0).abs() < 1e-6);
    }

    // ---- splits, windows, batching --------------------------------------

    #[test]
    fn chrono_split_partitions_the_series(n in 10usize..400) {
        let series = MultiSeries::from_channels(
            "p", Frequency::Hourly, Domain::Other,
            &[(0..n).map(|i| i as f64).collect::<Vec<_>>()],
        ).unwrap();
        for ratio in [SplitRatio::R712, SplitRatio::R622] {
            let sp = ChronoSplit::split(&series, ratio).unwrap();
            prop_assert_eq!(sp.train.len() + sp.val.len() + sp.test.len(), n);
            // Chronological: the boundary values are consecutive integers.
            prop_assert_eq!(sp.val.at(0, 0) as usize, sp.train.len());
        }
    }

    #[test]
    fn window_sampler_covers_every_sample_without_overlap_gaps(
        n in 20usize..300, lookback in 1usize..10, horizon in 1usize..10,
    ) {
        prop_assume!(n >= lookback + horizon);
        let s = WindowSampler::new(n, lookback, horizon, 1).unwrap();
        prop_assert_eq!(s.count(), n - lookback - horizon + 1);
        let last = s.window(s.count() - 1);
        prop_assert_eq!(last.target_end, n);
        for i in 0..s.count() {
            let w = s.window(i);
            prop_assert_eq!(w.lookback(), lookback);
            prop_assert_eq!(w.horizon(), horizon);
        }
    }

    #[test]
    fn drop_last_never_keeps_more_samples(n in 1usize..5000, batch in 1usize..600) {
        let keep = Batching::keep_all(batch);
        let drop = Batching::drop_last(batch);
        prop_assert!(drop.samples_retained(n) <= keep.samples_retained(n));
        prop_assert_eq!(keep.samples_retained(n), n);
        prop_assert_eq!(drop.samples_retained(n) % batch, 0);
    }

    #[test]
    fn lag_matrix_rows_are_contiguous_slices(
        n in 10usize..120, lookback in 1usize..8, horizon in 1usize..8,
    ) {
        prop_assume!(n >= lookback + horizon);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let (f, t) = lag_matrix(&xs, lookback, horizon).unwrap();
        for (i, (fi, ti)) in f.iter().zip(&t).enumerate() {
            prop_assert_eq!(fi[0] as usize, i);
            prop_assert_eq!(ti[0] as usize, i + lookback);
        }
    }

    // ---- CSV format ------------------------------------------------------

    #[test]
    fn csv_roundtrip_arbitrary_series(
        chan0 in finite_vec(1..30), chan1 in finite_vec(1..30),
    ) {
        let n = chan0.len().min(chan1.len());
        let series = MultiSeries::from_channels(
            "p", Frequency::Daily, Domain::Web,
            &[chan0[..n].to_vec(), chan1[..n].to_vec()],
        ).unwrap();
        let text = csvfmt::to_csv(&series);
        let back = csvfmt::from_csv(&text, "p", Frequency::Daily, Domain::Web).unwrap();
        prop_assert_eq!(back.values(), series.values());
    }

    // ---- numeric substrate ----------------------------------------------

    #[test]
    fn matrix_distributive_law(
        a in proptest::collection::vec(-10.0_f64..10.0, 12),
        b in proptest::collection::vec(-10.0_f64..10.0, 12),
        c in proptest::collection::vec(-10.0_f64..10.0, 12),
    ) {
        let ma = Matrix::from_vec(3, 4, a).unwrap();
        let mb = Matrix::from_vec(4, 3, b).unwrap();
        let mc = Matrix::from_vec(4, 3, c).unwrap();
        let left = ma.matmul(&mb.add(&mc).unwrap()).unwrap();
        let right = ma.matmul(&mb).unwrap().add(&ma.matmul(&mc).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn lu_solve_satisfies_the_system(
        vals in proptest::collection::vec(-5.0_f64..5.0, 9),
        rhs in proptest::collection::vec(-5.0_f64..5.0, 3),
    ) {
        let mut m = Matrix::from_vec(3, 3, vals).unwrap();
        // Diagonal dominance guarantees invertibility.
        for i in 0..3 {
            let v = m[(i, i)];
            m[(i, i)] = v + 20.0;
        }
        let x = m.solve(&rhs).unwrap();
        let back = m.matvec(&x).unwrap();
        for (a, b) in back.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_roundtrip_and_parseval(values in finite_vec(2..64)) {
        let xs: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let spec = fft(&xs, false).unwrap();
        let back = fft(&spec, true).unwrap();
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!((a.re - b.re).abs() < 1e-6 * (1.0 + b.re.abs()));
        }
        // Parseval: sum |x|^2 == (1/n) sum |X|^2.
        let time: f64 = xs.iter().map(|c| c.norm_sqr()).sum();
        let freq: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / xs.len() as f64;
        prop_assert!((time - freq).abs() < 1e-4 * (1.0 + time));
    }

    // ---- characteristics stay in their documented ranges -----------------

    #[test]
    fn characteristics_stay_in_range(values in finite_vec(30..200)) {
        use tfb::characteristics as ch;
        let t = ch::trend_strength(&values, None);
        prop_assert!((0.0..=1.0).contains(&t));
        let s = ch::seasonality_strength(&values, Some(12));
        prop_assert!((0.0..=1.0).contains(&s));
        let d = ch::shifting_value(&values);
        prop_assert!((0.0..=1.0).contains(&d));
        let tr = ch::transition_value(&values);
        prop_assert!((0.0..0.34).contains(&tr) || tr == 0.0);
        let p = ch::adf_pvalue(&values);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

//! End-to-end numerical-health probes: a NaN-poisoned training cell must
//! abort cleanly (no panic), land in the manifest's `health` section, and
//! appear in the report CSV as a marked row rather than vanishing.

use tfb::core::eval::{evaluate, EvalSettings};
use tfb::core::method::build_method;
use tfb::core::report::ResultTable;
use tfb::core::CoreError;
use tfb::data::{Domain, Frequency, MultiSeries, SplitRatio};
use tfb::models::ModelError;
use tfb::nn::TrainConfig;

#[test]
fn nan_training_cell_is_recorded_aborted_and_marked() {
    // One process-wide recorder: this test owns the whole run.
    tfb_obs::start_run(tfb_obs::RunOptions::default()).expect("recorder arms");

    // Poison the training region so the z-score stats — and with them the
    // model's first validation loss — are NaN.
    let mut vals: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
    for v in vals.iter_mut().take(150) {
        *v = f64::NAN;
    }
    let series = MultiSeries::new("NanCell", Frequency::Hourly, Domain::Health, 1, vals).unwrap();
    let quick = TrainConfig {
        epochs: 3,
        max_samples: 100,
        ..TrainConfig::default()
    };
    let mut method = build_method("NLinear", 24, 12, 1, Some(quick)).unwrap();
    let mut settings = EvalSettings::rolling(24, 12, SplitRatio::R712);
    settings.max_windows = 4;

    // The cell aborts with a structured numerical error — no panic, no
    // silently-wrong forecast.
    let err = evaluate(&mut method, &series, &settings).expect_err("NaN data cannot evaluate");
    let status = match &err {
        CoreError::Model(ModelError::Numerical(_)) => "aborted:numerical",
        _ => "failed",
    };
    assert_eq!(status, "aborted:numerical", "got {err:?}");

    // The manifest records the cell under health.nan_cells.
    let manifest = tfb_obs::finish_run(&[]).expect("run was armed");
    assert!(
        manifest
            .health
            .nan_cells
            .iter()
            .any(|c| c == "NanCell/NLinear"),
        "nan_cells = {:?}",
        manifest.health.nan_cells
    );
    assert!(
        manifest
            .health
            .aborted_cells
            .iter()
            .any(|c| c == "NanCell/NLinear"),
        "aborted_cells = {:?}",
        manifest.health.aborted_cells
    );
    assert!(!manifest.health.is_clean());

    // The report CSV marks the cell instead of dropping it.
    let mut table = ResultTable::default();
    table.push_failure("NanCell", "NLinear", 12, status);
    let csv = table.to_csv();
    assert!(
        csv.lines()
            .any(|l| l.starts_with("NanCell,NLinear,12,") && l.contains("aborted:numerical")),
        "csv:\n{csv}"
    );
}

//! Failure injection: misbehaving data and misbehaving user methods must
//! degrade into the "nan"/"inf" cells the paper's tables show — never into
//! panics or silently wrong aggregates.

use tfb::core::eval::{evaluate, EvalSettings};
use tfb::core::method::Method;
use tfb::core::{build_method, Metric};
use tfb::data::{Domain, Frequency, MultiSeries, SplitRatio};
use tfb::models::{ModelError, StatForecaster, WindowForecaster};

fn series_with(values: Vec<f64>) -> MultiSeries {
    MultiSeries::from_channels("inject", Frequency::Daily, Domain::Other, &[values]).unwrap()
}

#[test]
fn nan_data_yields_nan_metrics_not_panic() {
    let mut values: Vec<f64> = (0..300).map(|t| (t as f64 * 0.3).sin()).collect();
    values[250] = f64::NAN; // inside the test region
    let s = series_with(values);
    let mut m = build_method("Naive", 24, 12, 1, None).unwrap();
    let mut settings = EvalSettings::rolling(24, 12, SplitRatio::R712);
    settings.max_windows = 0;
    let out = evaluate(&mut m, &s, &settings).expect("evaluation completes");
    // The poisoned windows drag the aggregate to NaN — visible, not hidden.
    assert!(out.metric(Metric::Mae).is_nan());
}

/// A user method that returns the wrong number of values.
struct WrongLength;

impl StatForecaster for WrongLength {
    fn name(&self) -> &'static str {
        "WrongLength"
    }
    fn forecast(&self, history: &MultiSeries, horizon: usize) -> Result<Vec<f64>, ModelError> {
        Ok(vec![0.0; horizon.saturating_sub(1) * history.dim()])
    }
}

#[test]
fn wrong_forecast_length_is_reported_as_nan() {
    let s = series_with((0..200).map(|t| t as f64).collect());
    let mut m = Method::Stat(Box::new(WrongLength));
    let mut settings = EvalSettings::rolling(20, 10, SplitRatio::R712);
    settings.max_windows = 3;
    let out = evaluate(&mut m, &s, &settings).expect("evaluation completes");
    assert!(out.metric(Metric::Mae).is_nan());
}

/// A user method that errors on every call.
struct AlwaysFails;

impl StatForecaster for AlwaysFails {
    fn name(&self) -> &'static str {
        "AlwaysFails"
    }
    fn forecast(&self, _: &MultiSeries, _: usize) -> Result<Vec<f64>, ModelError> {
        Err(ModelError::Numerical("injected".into()))
    }
}

#[test]
fn method_that_always_fails_yields_an_eval_error() {
    let s = series_with((0..200).map(|t| t as f64).collect());
    let mut m = Method::Stat(Box::new(AlwaysFails));
    let settings = EvalSettings::rolling(20, 10, SplitRatio::R712);
    // Stat methods that fail on every window produce a clean error, not a
    // zero-window aggregate.
    assert!(evaluate(&mut m, &s, &settings).is_err());
}

/// A window method whose training fails (e.g. a user model with impossible
/// constraints).
struct UntrainableWindow;

impl WindowForecaster for UntrainableWindow {
    fn name(&self) -> &'static str {
        "Untrainable"
    }
    fn lookback(&self) -> usize {
        8
    }
    fn horizon(&self) -> usize {
        4
    }
    fn train(&mut self, _: &MultiSeries) -> Result<(), ModelError> {
        Err(ModelError::InsufficientData("injected"))
    }
    fn predict(&self, _: &[f64], _: usize) -> Result<Vec<f64>, ModelError> {
        unreachable!("train never succeeds")
    }
}

#[test]
fn train_failure_propagates_cleanly() {
    let s = series_with((0..200).map(|t| t as f64).collect());
    let mut m = Method::Window(Box::new(UntrainableWindow));
    let settings = EvalSettings::rolling(8, 4, SplitRatio::R712);
    assert!(evaluate(&mut m, &s, &settings).is_err());
}

#[test]
fn infinite_values_do_not_crash_metrics() {
    let mut values: Vec<f64> = (0..300).map(|t| (t as f64 * 0.3).sin()).collect();
    values[280] = f64::INFINITY;
    let s = series_with(values);
    let mut m = build_method("Mean", 24, 12, 1, None).unwrap();
    let mut settings = EvalSettings::rolling(24, 12, SplitRatio::R712);
    settings.max_windows = 0;
    let out = evaluate(&mut m, &s, &settings).expect("evaluation completes");
    let v = out.metric(Metric::Mae);
    assert!(v.is_nan() || v.is_infinite());
}

#[test]
fn partial_method_failure_still_aggregates_remaining_windows() {
    // VAR on a history that is too short for its order in early rolling
    // iterations: those windows are skipped, later ones succeed. (Construct
    // by using a dataset whose train region is tiny relative to lookback.)
    let s = series_with((0..120).map(|t| (t as f64 * 0.37).sin() * 3.0).collect());
    let mut m = build_method("ARIMA", 12, 6, 1, None).unwrap();
    let mut settings = EvalSettings::rolling(12, 6, SplitRatio::R712);
    settings.max_windows = 0;
    let out = evaluate(&mut m, &s, &settings).expect("some windows usable");
    assert!(out.n_windows > 0);
    assert!(out.metric(Metric::Mae).is_finite());
}

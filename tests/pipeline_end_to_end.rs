//! End-to-end integration tests: JSON config in, parallel execution,
//! reporting out — the full pipeline of Figure 7 across every layer.

use tfb::core::report::{RankTable, ResultTable};
use tfb::core::{run_jobs, BenchmarkConfig, Metric, Parallelism};

fn config(methods: &[&str], datasets: &[&str]) -> BenchmarkConfig {
    BenchmarkConfig::from_json(&format!(
        r#"{{
            "datasets": {datasets:?},
            "methods": {methods:?},
            "horizons": [12],
            "lookbacks": [24, 36],
            "strategy": {{"rolling": {{"stride": 8}}}},
            "metrics": ["mae", "mse", "smape", "wape"],
            "max_windows": 5,
            "max_len": 600,
            "max_dim": 3
        }}"#
    ))
    .expect("valid config")
}

#[test]
fn config_to_report_roundtrip() {
    let cfg = config(&["Naive", "SeasonalNaive", "LR"], &["ILI", "Exchange"]);
    let results = run_jobs(&cfg, Parallelism::Threads(3), None);
    assert_eq!(results.len(), 6);
    let outcomes: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("job succeeds"))
        .collect();
    let table = ResultTable::from_outcomes(&outcomes);
    // Every metric populated and finite on these benign datasets.
    for row in &table.rows {
        for m in [Metric::Mae, Metric::Mse, Metric::Smape, Metric::Wape] {
            let v = row.metrics[m.label()];
            assert!(v.is_finite(), "{}/{} {m:?} = {v}", row.dataset, row.method);
        }
    }
    // Markdown and CSV render every cell.
    let md = table.to_markdown(Metric::Mae);
    assert!(md.contains("ILI") && md.contains("Exchange") && md.contains("LR"));
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 1 + 6);
    // Ranks cover both cases.
    let ranks = RankTable::compute(&table, Metric::Mae);
    assert_eq!(ranks.cases, 2);
    assert_eq!(ranks.wins.values().sum::<usize>(), 2);
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let cfg = config(&["LR", "KNN"], &["NASDAQ"]);
    let a: Vec<f64> = run_jobs(&cfg, Parallelism::Sequential, None)
        .into_iter()
        .map(|r| r.unwrap().metric(Metric::Mae))
        .collect();
    let b: Vec<f64> = run_jobs(&cfg, Parallelism::Threads(2), None)
        .into_iter()
        .map(|r| r.unwrap().metric(Metric::Mae))
        .collect();
    assert_eq!(a, b, "parallel execution must not change results");
}

#[test]
fn statistical_and_window_methods_share_one_pipeline() {
    // Issue 3: the same config must evaluate statistical, ML and DL methods
    // on identical data and settings.
    let cfg = config(&["Theta", "XGB", "NLinear"], &["NN5"]);
    let results = run_jobs(&cfg, Parallelism::Sequential, None);
    let outcomes: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("job succeeds"))
        .collect();
    assert_eq!(outcomes.len(), 3);
    let windows: Vec<usize> = outcomes.iter().map(|o| o.n_windows).collect();
    assert!(
        windows.windows(2).all(|w| w[0] == w[1]),
        "all methods must see the same evaluation windows: {windows:?}"
    );
}

#[test]
fn failed_cells_do_not_poison_the_study() {
    // VAR on a 2-point horizon with a dataset too short for its order will
    // fail for some look-backs; an unknown method always fails. The study
    // must still return per-job results.
    let cfg = config(&["Naive", "NotAMethod"], &["ILI"]);
    let results = run_jobs(&cfg, Parallelism::Sequential, None);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}

#[test]
fn fixed_strategy_runs_through_config() {
    let cfg = BenchmarkConfig::from_json(
        r#"{
            "datasets": ["ILI"],
            "methods": ["ETS", "Theta"],
            "horizons": [12],
            "lookbacks": [15],
            "strategy": "fixed",
            "metrics": ["mase", "msmape"],
            "max_len": 600,
            "max_dim": 2
        }"#,
    )
    .expect("valid config");
    let results = run_jobs(&cfg, Parallelism::Sequential, None);
    for r in results {
        let o = r.expect("fixed eval succeeds");
        assert_eq!(o.n_windows, 1);
        assert!(o.metric(Metric::Msmape).is_finite());
    }
}

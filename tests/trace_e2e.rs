//! End-to-end request tracing over real TCP: an armed run serves
//! concurrent forecasts, every response carries a unique
//! `x-tfb-trace-id`, the recorded phase timings account for the
//! end-to-end latency, `GET /metrics` is validator-clean OpenMetrics,
//! the event log exports to Chrome/Perfetto trace JSON
//! deterministically, and the run manifest gains `slo` + `exemplars`.
//!
//! The recorder is process-global, so everything lives in ONE `#[test]`.

#![cfg(feature = "obs")]

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use tfb::artifact::{fit, ServableModel};
use tfb::data::{ChronoSplit, Normalization, Normalizer};
use tfb::serve::{serve, ServerConfig};
use tfb_json::JsonValue;

const LOOKBACK: usize = 16;
const HORIZON: usize = 8;

fn lr_model() -> ServableModel {
    let profile = tfb::datagen::profile_by_name("ILI").expect("profile");
    let series = profile.generate(tfb::datagen::Scale::TINY);
    let split = ChronoSplit::split(&series, profile.split).expect("split");
    let norm = Normalizer::fit(&split.train, Normalization::ZScore);
    let normed = norm.apply(&series).expect("normalize");
    let train = normed.slice_rows(0..split.val_start);
    let artifact = fit("LR", &train, LOOKBACK, HORIZON, norm, String::new(), None).expect("fit");
    ServableModel::from_artifact(artifact).expect("servable")
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            let (k, v) = (k.trim().to_string(), v.trim().to_string());
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("content-length");
            }
            headers.push((k, v));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    HttpReply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

#[test]
fn traced_serving_run_end_to_end() {
    let out_dir = std::env::temp_dir().join(format!("tfb_trace_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).expect("out dir");
    let events_path = out_dir.join("serve.events.jsonl");

    tfb_obs::start_run(tfb_obs::RunOptions {
        events_path: Some(events_path.clone()),
    })
    .expect("sink opens");
    // A zero-latency threshold guarantees observable breaches, proving
    // the SLO tracker is wired through to the manifest.
    tfb_obs::trace::configure_slo(tfb_obs::trace::SloConfig {
        threshold: Duration::ZERO,
        objective: 0.99,
    });

    let model = lr_model();
    let dim = model.dim();
    let handle = serve(
        model,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            coalescer: tfb::serve::CoalescerConfig::default(),
        },
    )
    .expect("serve");
    let addr = handle.addr();

    // 12 threads x 4 forecasts: every reply must carry a well-formed,
    // process-unique trace id.
    let body = {
        let window: Vec<f64> = (0..LOOKBACK * dim).map(|i| (i as f64) * 0.01).collect();
        JsonValue::Object(vec![(
            "window".to_string(),
            JsonValue::Array(window.into_iter().map(JsonValue::Number).collect()),
        )])
        .compact()
    };
    let ids: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
    std::thread::scope(|scope| {
        for _ in 0..12 {
            scope.spawn(|| {
                for _ in 0..4 {
                    let reply = request(addr, "POST", "/forecast", &body);
                    assert_eq!(reply.status, 200, "{}", reply.body);
                    let id = reply
                        .header("x-tfb-trace-id")
                        .expect("armed responses carry a trace id")
                        .to_string();
                    assert_eq!(id.len(), 16, "{id}");
                    assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
                    assert!(
                        ids.lock().unwrap().insert(id),
                        "duplicate trace id across concurrent requests"
                    );
                }
            });
        }
    });
    assert_eq!(ids.into_inner().unwrap().len(), 48);

    // The armed exposition is validator-clean and carries the tracing
    // families plus the SLO gauges.
    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .is_some_and(|v| v.contains("openmetrics-text")));
    tfb_obs::openmetrics::validate(&metrics.body).expect("valid OpenMetrics");
    for family in [
        "tfb_request_seconds_bucket",
        "tfb_request_phase_seconds_bucket{phase=\"infer\"",
        "tfb_slo_burn_rate{window=\"1m\"}",
        "tfb_serve_queue_depth",
        "tfb_serve_batch_fill_ratio",
    ] {
        assert!(
            metrics.body.contains(family),
            "missing {family} in:\n{}",
            metrics.body
        );
    }

    handle.shutdown();
    let manifest = tfb_obs::finish_run(&[("test", "trace_e2e".to_string())]).expect("manifest");

    // SLO and exemplars surfaced in the manifest: every request scored,
    // every one a breach (zero threshold), worst-N ring bounded.
    let slo = manifest.slo.as_ref().expect("slo section");
    assert!(slo.total >= 48, "all requests scored: {}", slo.total);
    assert_eq!(
        slo.breaches, slo.total,
        "zero threshold breaches everything"
    );
    assert!(!manifest.exemplars.is_empty());
    assert!(manifest.exemplars.len() <= 8);

    // Event-log invariants: one trace event per request, phase sums
    // bounded by (and close to) the end-to-end total.
    let events = std::fs::read_to_string(&events_path).expect("events written");
    let mut traces = 0usize;
    let mut batched = 0usize;
    for line in events.lines() {
        let v = JsonValue::parse(line).expect("event line parses");
        if v.get("ev").and_then(JsonValue::as_str) != Some("trace") {
            continue;
        }
        traces += 1;
        let total = v
            .get("total_ns")
            .and_then(JsonValue::as_f64)
            .expect("total");
        let sum: f64 = v
            .get("phases")
            .and_then(JsonValue::as_object)
            .expect("phases")
            .iter()
            .map(|(_, ns)| ns.as_f64().expect("ns"))
            .sum();
        assert!(sum <= total, "phase sum {sum} > total {total}");
        assert!(
            total - sum < 5e6,
            "more than 5 ms of a request is unattributed ({total} vs {sum})"
        );
        if v.get("batch_id").and_then(JsonValue::as_f64).is_some() {
            batched += 1;
        }
    }
    assert!(traces >= 49, "48 forecasts + /metrics traced, saw {traces}");
    assert_eq!(batched, 48, "every forecast links to its batch");

    // The exporter turns the log into deterministic, well-formed
    // Chrome/Perfetto trace JSON with request slices and thread lanes.
    let trace_a = tfb_obs::export::chrome_trace(&events).expect("export");
    let trace_b = tfb_obs::export::chrome_trace(&events).expect("export");
    assert_eq!(trace_a, trace_b, "export must be deterministic");
    let doc = JsonValue::parse(&trace_a).expect("trace JSON parses");
    let slices = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents");
    assert!(!slices.is_empty());
    let names: Vec<&str> = slices
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("request ")));
    assert!(names.iter().any(|n| n.starts_with("phase:")));
    assert!(names.contains(&"thread_name"), "missing lane metadata");
    assert!(
        names.contains(&"serve.batch"),
        "missing batch-worker slices"
    );

    let _ = std::fs::remove_dir_all(&out_dir);
}
